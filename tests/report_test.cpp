#include <gtest/gtest.h>

#include "src/report/scoring.h"
#include "src/report/table.h"

namespace dtaint {
namespace {

Finding MakeFinding(const std::string& fn, const std::string& sink) {
  Finding f;
  f.path.sink_function = fn;
  f.path.sink_name = sink;
  f.path.sink_site = 0x100;
  return f;
}

PlantedVuln MakePlant(const std::string& id, const std::string& fn,
                      const std::string& sink, bool sanitized = false) {
  PlantedVuln v;
  v.id = id;
  v.sink_function = fn;
  v.sink = sink;
  v.sanitized = sanitized;
  return v;
}

TEST(Table, RendersAlignedColumns) {
  TextTable table({"Name", "Count"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "12345"});
  std::string out = table.Render();
  EXPECT_EQ(out,
            "Name   Count\n"
            "-----  -----\n"
            "alpha  1    \n"
            "b      12345\n");
}

TEST(Table, ShortRowsPadded) {
  TextTable table({"A", "B", "C"});
  table.AddRow({"x"});
  std::string out = table.Render();
  EXPECT_NE(out.find("x  "), std::string::npos);
}

TEST(Scoring, TruePositive) {
  auto score = ScoreFindings({MakeFinding("f1", "system")},
                             {MakePlant("p1", "f1", "system")});
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_negatives, 0u);
  EXPECT_EQ(score.false_positives, 0u);
  EXPECT_DOUBLE_EQ(score.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(score.Recall(), 1.0);
  ASSERT_EQ(score.found_ids.size(), 1u);
  EXPECT_EQ(score.found_ids[0], "p1");
}

TEST(Scoring, FalseNegative) {
  auto score =
      ScoreFindings({}, {MakePlant("p1", "f1", "system")});
  EXPECT_EQ(score.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(score.Recall(), 0.0);
  EXPECT_EQ(score.missed_ids[0], "p1");
}

TEST(Scoring, UnmatchedFindingIsFalsePositive) {
  auto score = ScoreFindings({MakeFinding("other", "system")},
                             {MakePlant("p1", "f1", "system")});
  EXPECT_EQ(score.false_positives, 1u);
  EXPECT_EQ(score.true_positives, 0u);
}

TEST(Scoring, SafeTwinHitCounted) {
  auto score =
      ScoreFindings({MakeFinding("f1", "system")},
                    {MakePlant("p1", "f1", "system", /*sanitized=*/true)});
  EXPECT_EQ(score.safe_twin_hits, 1u);
  EXPECT_EQ(score.true_positives, 0u);
  EXPECT_LT(score.Precision(), 1.0);
}

TEST(Scoring, DuplicateFindingsCountOnce) {
  auto score = ScoreFindings(
      {MakeFinding("f1", "system"), MakeFinding("f1", "system")},
      {MakePlant("p1", "f1", "system")});
  EXPECT_EQ(score.true_positives, 1u);
}

TEST(Scoring, SinkNameMustMatch) {
  auto score = ScoreFindings({MakeFinding("f1", "strcpy")},
                             {MakePlant("p1", "f1", "system")});
  EXPECT_EQ(score.true_positives, 0u);
  EXPECT_EQ(score.false_positives, 1u);
}

TEST(Scoring, EmptyEverything) {
  auto score = ScoreFindings({}, {});
  EXPECT_DOUBLE_EQ(score.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(score.Recall(), 1.0);
}

}  // namespace
}  // namespace dtaint
