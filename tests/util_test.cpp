#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/strings.h"

#include <gtest/gtest.h>

#include <set>

namespace dtaint {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = CorruptData("bad magic");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruptData);
  EXPECT_EQ(s.ToString(), "CORRUPT_DATA: bad magic");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(Rng, WeightedPickRespectsZeros) {
  Rng rng(4);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.WeightedPick(w), 1u);
}

TEST(Rng, ForkIndependent) {
  Rng rng(5);
  Rng c1 = rng.Fork(1);
  Rng c2 = rng.Fork(2);
  EXPECT_NE(c1.Next(), c2.Next());
}

TEST(Hash, Fnv1aStable) {
  EXPECT_EQ(Fnv1a("hello"), Fnv1a("hello"));
  EXPECT_NE(Fnv1a("hello"), Fnv1a("hellp"));
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(1, 2), 3),
            HashCombine(HashCombine(1, 3), 2));
}

TEST(Strings, HexStr) {
  EXPECT_EQ(HexStr(0), "0x0");
  EXPECT_EQ(HexStr(0x4C), "0x4c");
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Strings, Pad) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcdef", 3), "abc");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
}

TEST(Strings, FmtDouble) {
  EXPECT_EQ(FmtDouble(1.2345, 2), "1.23");
}

}  // namespace
}  // namespace dtaint
