#include <gtest/gtest.h>

#include "src/core/alias.h"

namespace dtaint {
namespace {

DefPair MakeDef(SymRef d, SymRef u) {
  DefPair dp;
  dp.d = std::move(d);
  dp.u = std::move(u);
  return dp;
}

TEST(IsPointerValue, StructuralEvidence) {
  TypeMap types;
  EXPECT_TRUE(IsPointerValue(SymExpr::Heap(1), types));
  EXPECT_TRUE(IsPointerValue(SymAdd(SymExpr::Sp0(), -0x40), types));
  EXPECT_FALSE(IsPointerValue(SymExpr::Arg(0), types));
  types.Observe(SymExpr::Arg(0), ValueType::kPtr);
  EXPECT_TRUE(IsPointerValue(SymExpr::Arg(0), types));
  EXPECT_FALSE(IsPointerValue(SymExpr::Const(4), types));
}

TEST(AliasReplace, PaperFormulaCase) {
  // *(q+4) = p where p = heap pointer: deref(q+4) aliases p, so the
  // tainted def through p gains a twin through deref(q+4).
  FunctionSummary summary;
  SymRef q = SymExpr::Arg(0);
  SymRef p = SymExpr::Heap(42);
  SymRef store_loc = SymExpr::Deref(SymAdd(q, 4));
  summary.def_pairs.push_back(MakeDef(store_loc, p));
  // A definition through p: *(p) = taint.
  summary.def_pairs.push_back(
      MakeDef(SymExpr::Deref(p), SymExpr::Taint(0x10, "recv")));

  AliasResult result = AliasReplace(summary);
  ASSERT_EQ(result.facts.size(), 1u);
  EXPECT_TRUE(SymExpr::Equal(result.facts[0].alias_loc, store_loc));
  EXPECT_TRUE(SymExpr::Equal(result.facts[0].base, p));
  EXPECT_EQ(result.facts[0].offset, 0);
  ASSERT_EQ(result.pairs_added, 1u);
  // The twin: deref(deref(arg0+0x4)) = taint.
  const DefPair& twin = summary.def_pairs.back();
  EXPECT_EQ(twin.d->ToString(), "deref(deref(arg0+0x4))");
  EXPECT_TRUE(twin.u->IsTainted());
}

TEST(AliasReplace, OffsetAdjustment) {
  // *(q+4) = base + 8: locations through `base` rewrite to
  // deref(q+4) - 8.
  FunctionSummary summary;
  SymRef base = SymExpr::Heap(7);
  summary.types.Observe(base, ValueType::kPtr);
  SymRef store_loc = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 4));
  summary.def_pairs.push_back(MakeDef(store_loc, SymAdd(base, 8)));
  summary.def_pairs.push_back(
      MakeDef(SymExpr::Deref(SymAdd(base, 12)), SymExpr::Const(1)));

  AliasReplace(summary);
  bool found = false;
  for (const DefPair& dp : summary.def_pairs) {
    // deref((deref(arg0+0x4)-8)+12) normalizes to
    // deref(deref(arg0+0x4)+0x4).
    if (dp.d->ToString() == "deref(deref(arg0+0x4)+0x4)") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AliasReplace, NoSelfAliasLoop) {
  // deref(arg0) = arg0 + 4 must not rewrite itself endlessly.
  FunctionSummary summary;
  summary.types.Observe(SymExpr::Arg(0), ValueType::kPtr);
  summary.def_pairs.push_back(
      MakeDef(SymExpr::Deref(SymExpr::Arg(0)), SymAdd(SymExpr::Arg(0), 4)));
  AliasResult result = AliasReplace(summary);
  // Terminates; at most a bounded number of twins.
  EXPECT_LE(result.pairs_added, 2u);
}

TEST(AliasReplace, NonPointerValuesIgnored) {
  FunctionSummary summary;
  summary.def_pairs.push_back(MakeDef(
      SymExpr::Deref(SymAdd(SymExpr::Arg(0), 4)), SymExpr::Const(100)));
  AliasResult result = AliasReplace(summary);
  EXPECT_TRUE(result.facts.empty());
  EXPECT_EQ(result.pairs_added, 0u);
}

TEST(AliasReplace, MultiBasePointerVariable) {
  // The paper's example: deref(deref(arg0+0x58)+0xEC) contains base
  // pointers arg0 and deref(arg0+0x58); an alias for the inner one
  // rewrites the outer location.
  FunctionSummary summary;
  SymRef inner = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 0x58));
  summary.types.Observe(inner, ValueType::kPtr);
  // Alias fact source: *(arg1) = deref(arg0+0x58)'s value.
  summary.def_pairs.push_back(
      MakeDef(SymExpr::Deref(SymExpr::Arg(1)), inner));
  // A def through the chain.
  summary.def_pairs.push_back(
      MakeDef(SymExpr::Deref(SymAdd(inner, 0xEC)), SymExpr::Const(5)));
  AliasReplace(summary);
  bool found = false;
  for (const DefPair& dp : summary.def_pairs) {
    if (dp.d->ToString() == "deref(deref(arg1)+0xec)") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dtaint
