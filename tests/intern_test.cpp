// Unit tests for the hash-consing SymExpr interner (src/symexec/intern).
//
// The contract under test: with interning on (the default), the SymExpr
// factories return the *same node* for the same structure, so Equal is
// a pointer compare; with it off they allocate fresh nodes whose deep
// comparison must agree with the pointer fast path; Canonical() bridges
// the two worlds; and the whole thing is safe to hammer from many
// threads (the TSan CI job runs this binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/symexec/intern.h"
#include "src/symexec/symexpr.h"

namespace dtaint {
namespace {

/// deref(...deref(arg0+1)+2...) spine mixing every node family.
SymRef DeepExpr(int depth, int arg = 0) {
  SymRef e = SymExpr::Arg(arg);
  for (int i = 1; i <= depth; ++i) {
    e = SymExpr::Deref(SymAdd(e, i));
    e = SymExpr::Bin(BinOp::kXor, e, SymExpr::InitReg(i % 8));
  }
  return e;
}

TEST(Intern, FactoriesReturnTheCanonicalNode) {
  ScopedExprInterning on(true);
  SymRef a = DeepExpr(16);
  SymRef b = DeepExpr(16);
  EXPECT_EQ(a.get(), b.get());  // same node, not merely equal
  EXPECT_TRUE(a->interned());
  EXPECT_TRUE(SymExpr::Equal(a, b));

  // Every leaf family dedups too.
  EXPECT_EQ(SymExpr::Const(7).get(), SymExpr::Const(7).get());
  EXPECT_EQ(SymExpr::Sp0().get(), SymExpr::Sp0().get());
  EXPECT_EQ(SymExpr::Ret(0x6c4c).get(), SymExpr::Ret(0x6c4c).get());
  EXPECT_EQ(SymExpr::Heap(42).get(), SymExpr::Heap(42).get());
  EXPECT_EQ(SymExpr::Taint(0x10, "recv").get(),
            SymExpr::Taint(0x10, "recv").get());
}

TEST(Intern, DistinctShapesAreDistinctNodes) {
  ScopedExprInterning on(true);
  EXPECT_NE(SymExpr::Arg(0).get(), SymExpr::Arg(1).get());
  EXPECT_NE(SymExpr::Taint(0x10, "recv").get(),
            SymExpr::Taint(0x10, "read").get());  // text participates
  EXPECT_NE(SymExpr::Deref(SymExpr::Arg(0), 4).get(),
            SymExpr::Deref(SymExpr::Arg(0), 1).get());  // size does too
  EXPECT_FALSE(SymExpr::Equal(DeepExpr(16, 0), DeepExpr(16, 1)));
}

TEST(Intern, NormalizationLandsOnTheSameNode) {
  ScopedExprInterning on(true);
  // ((arg0+4)+4) normalizes to arg0+8 — interning makes that literal.
  SymRef chained = SymAdd(SymAdd(SymExpr::Arg(0), 4), 4);
  SymRef direct = SymAdd(SymExpr::Arg(0), 8);
  EXPECT_EQ(chained.get(), direct.get());
}

TEST(Intern, LegacyPathStillDeepCompares) {
  ScopedExprInterning off(false);
  SymRef a = DeepExpr(16);
  SymRef b = DeepExpr(16);
  EXPECT_NE(a.get(), b.get());  // fresh heap nodes
  EXPECT_FALSE(a->interned());
  EXPECT_TRUE(SymExpr::Equal(a, b));
  EXPECT_FALSE(SymExpr::Equal(a, DeepExpr(16, 1)));
}

TEST(Intern, MixedInternedAndLegacyCompareStructurally) {
  SymRef legacy;
  {
    ScopedExprInterning off(false);
    legacy = DeepExpr(12);
  }
  ScopedExprInterning on(true);
  SymRef interned = DeepExpr(12);
  EXPECT_NE(legacy.get(), interned.get());
  EXPECT_TRUE(SymExpr::Equal(legacy, interned));
  EXPECT_TRUE(SymExpr::Equal(interned, legacy));
  EXPECT_TRUE(interned->Contains(legacy->lhs()->lhs()));
}

TEST(Intern, CanonicalBridgesLegacyTrees) {
  SymRef legacy;
  {
    ScopedExprInterning off(false);
    legacy = DeepExpr(12);
  }
  SymRef canon = ExprInterner::Global().Canonical(legacy);
  EXPECT_TRUE(canon->interned());
  EXPECT_TRUE(SymExpr::Equal(canon, legacy));
  {
    ScopedExprInterning on(true);
    EXPECT_EQ(canon.get(), DeepExpr(12).get());
  }
  // Idempotent and pointer-identical on an already-canonical tree.
  EXPECT_EQ(ExprInterner::Global().Canonical(canon).get(), canon.get());
}

TEST(Intern, ReplaceAndTaintQueriesMatchLegacySemantics) {
  SymRef from = SymExpr::Arg(0);
  SymRef to = SymExpr::Sp0();
  for (bool enabled : {true, false}) {
    ScopedExprInterning toggle(enabled);
    SymRef hay = DeepExpr(12);
    SymRef replaced = SymExpr::Replace(hay, from, to);
    EXPECT_FALSE(replaced->Contains(from));
    EXPECT_TRUE(replaced->Contains(to));
    // Absent needle: unchanged, same pointer.
    EXPECT_EQ(SymExpr::Replace(hay, SymExpr::Arg(7), to).get(), hay.get());

    SymRef tainted = SymExpr::Bin(BinOp::kXor, hay,
                                  SymExpr::Taint(0x20, "recv"));
    EXPECT_FALSE(hay->IsTainted());
    EXPECT_TRUE(tainted->IsTainted());
    auto found = tainted->FindTaint();
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->first, 0x20u);
    EXPECT_EQ(found->second, "recv");
  }
}

TEST(Intern, StatsCountHitsNodesAndBytes) {
  ScopedExprInterning on(true);
  ExprInterner& interner = ExprInterner::Global();
  InternStats before = interner.stats();
  // A never-seen-before shape (unique heap ids) ...
  SymRef fresh = SymExpr::Bin(BinOp::kMul, SymExpr::Heap(0xA11CE),
                              SymExpr::Heap(0xB0B51DE5));
  InternStats after_miss = interner.stats();
  EXPECT_GT(after_miss.nodes, before.nodes);
  // Arena bytes are reserved in 64 KiB blocks, so a few nodes need not
  // move the counter — it just can never be zero or shrink.
  EXPECT_GE(after_miss.bytes, before.bytes);
  EXPECT_GT(after_miss.bytes, 0u);
  // ... rebuilt, is all hits and zero new nodes.
  SymRef again = SymExpr::Bin(BinOp::kMul, SymExpr::Heap(0xA11CE),
                              SymExpr::Heap(0xB0B51DE5));
  EXPECT_EQ(again.get(), fresh.get());
  InternStats after_hit = interner.stats();
  EXPECT_EQ(after_hit.nodes, after_miss.nodes);  // all hits, no new nodes
  EXPECT_EQ(after_hit.bytes, after_miss.bytes);
  EXPECT_GE(after_hit.hits, after_miss.hits + 3);
}

TEST(Intern, PublishMetricsPushesDeltasIntoTheRegistry) {
  ScopedExprInterning on(true);
  ExprInterner& interner = ExprInterner::Global();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();

  interner.PublishMetrics();  // drain whatever earlier tests produced
  uint64_t nodes0 = registry.counter("intern.nodes").Value();
  uint64_t hits0 = registry.counter("intern.hits").Value();

  SymRef fresh = SymExpr::Bin(BinOp::kOr, SymExpr::Heap(0xFEED),
                              SymExpr::Heap(0xF00D));
  SymRef again = SymExpr::Bin(BinOp::kOr, SymExpr::Heap(0xFEED),
                              SymExpr::Heap(0xF00D));
  EXPECT_EQ(fresh.get(), again.get());
  interner.PublishMetrics();
  EXPECT_GT(registry.counter("intern.nodes").Value(), nodes0);
  EXPECT_GT(registry.counter("intern.hits").Value(), hits0);

  // Publishing with no traffic in between adds nothing (delta = 0), so
  // registry counters track interner totals instead of double-counting.
  uint64_t nodes1 = registry.counter("intern.nodes").Value();
  interner.PublishMetrics();
  EXPECT_EQ(registry.counter("intern.nodes").Value(), nodes1);
}

TEST(Intern, ConcurrentFactoriesConvergeOnOneNodePerShape) {
  ScopedExprInterning on(true);
  constexpr int kThreads = 8;
  constexpr int kShapes = 64;
  // Each thread builds every shape; all threads must get the same
  // pointer for the same shape. Shapes overlap across threads by
  // construction, so this exercises the found-vs-insert race, and the
  // deep spine exercises cross-thread child-pointer publication.
  std::vector<std::vector<const SymExpr*>> seen(
      kThreads, std::vector<const SymExpr*>(kShapes));
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &seen] {
      for (int s = 0; s < kShapes; ++s) {
        SymRef e = SymExpr::Bin(
            BinOp::kXor, DeepExpr(8, s % 4),
            SymAdd(SymExpr::Taint(0x9000 + s, "recv"), s));
        seen[t][s] = e.get();
        EXPECT_TRUE(e->interned());
        EXPECT_TRUE(e->IsTainted());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int s = 0; s < kShapes; ++s) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][s], seen[0][s])
          << "thread " << t << " got a different node for shape " << s;
    }
  }
}

}  // namespace
}  // namespace dtaint
