// Differential oracle for the expression interner.
//
// Hash-consing is only admissible if it is *invisible*: for any input,
// the full analysis report (findings, def-pair propagation counts, path
// counts — everything except wall-clock timings and per-run metrics)
// must be byte-identical whether the expressions were interned (the
// default) or heap-allocated by the legacy path, at any thread count.
// Same bar as tests/cache_differential_test applies to the summary
// cache: the codec bytes a summary encodes to — and therefore the
// cache's content-addressed fingerprints — must not change either.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cache/summary_codec.h"
#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/dtaint.h"
#include "src/report/json.h"
#include "src/symexec/intern.h"
#include "src/synth/firmware_synth.h"

namespace dtaint {
namespace {

/// 10 synthesized firmware binaries (5 seeds x 2 architectures)
/// rotating through all five plant patterns, half with a sanitized
/// twin so reports contain both findings and their absence.
std::vector<Binary> BuildCorpus() {
  std::vector<Binary> corpus;
  for (int seed = 0; seed < 5; ++seed) {
    for (Arch arch : {Arch::kDtArm, Arch::kDtMips}) {
      ProgramSpec spec;
      spec.name = "ifw" + std::to_string(seed);
      spec.arch = arch;
      spec.seed = 300 + static_cast<uint64_t>(seed);
      spec.filler_functions = 15 + seed;
      PlantSpec p;
      p.id = "v" + std::to_string(seed);
      p.pattern = static_cast<VulnPattern>(seed % 5);
      p.source = (p.pattern == VulnPattern::kDispatch ||
                  p.pattern == VulnPattern::kLoopCopy ||
                  p.pattern == VulnPattern::kAliasChain)
                     ? "recv"
                     : "getenv";
      p.sink = p.pattern == VulnPattern::kLoopCopy
                   ? "loop"
                   : (p.pattern == VulnPattern::kDispatch ? "memcpy"
                                                          : "system");
      spec.plants.push_back(p);
      if (seed % 2) {
        PlantSpec safe = p;
        safe.id = "s" + std::to_string(seed);
        safe.sanitized = true;
        spec.plants.push_back(safe);
      }
      auto out = SynthesizeBinary(spec);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      if (out.ok()) corpus.push_back(std::move(out->binary));
    }
  }
  return corpus;
}

/// Serializes a report with the run-dependent fields (timings, cache
/// counters, per-run metrics, the timing-ordered hot-function profile)
/// zeroed; everything else must survive byte comparison.
std::string NormalizedJson(AnalysisReport report) {
  report.ssa_seconds = 0.0;
  report.ddg_seconds = 0.0;
  report.total_seconds = 0.0;
  report.interproc_stats.summary_seconds = 0.0;
  report.interproc_stats.cache_hits = 0;
  report.interproc_stats.cache_misses = 0;
  report.interproc_stats.cache_evictions = 0;
  report.interproc_stats.cache_memory_bytes = 0;
  report.interproc_stats.hot_functions.clear();
  report.hot_functions.clear();
  report.metrics = obs::MetricsSnapshot{};
  return ReportToJson(report);
}

std::string AnalyzeNormalized(const Binary& binary, bool interning,
                              int num_threads = 1) {
  ScopedExprInterning toggle(interning);
  DTaintConfig config;
  config.interproc.num_threads = num_threads;
  auto report = DTaint(config).Analyze(binary);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? NormalizedJson(*report) : std::string();
}

// ---------- the oracle -------------------------------------------------------

TEST(InternDifferential, InternedAndLegacyReportsAreByteIdentical) {
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 10u);
  for (size_t i = 0; i < corpus.size(); ++i) {
    std::string legacy = AnalyzeNormalized(corpus[i], /*interning=*/false);
    ASSERT_FALSE(legacy.empty());
    EXPECT_EQ(AnalyzeNormalized(corpus[i], /*interning=*/true), legacy)
        << "interned run diverged on corpus[" << i << "]";
  }
}

TEST(InternDifferential, ByteIdenticalAtEveryThreadCount) {
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    const Binary& binary = corpus[i * 2];
    std::string reference =
        AnalyzeNormalized(binary, /*interning=*/false, /*num_threads=*/1);
    ASSERT_FALSE(reference.empty());
    for (int threads : {1, 2, 8}) {
      EXPECT_EQ(AnalyzeNormalized(binary, /*interning=*/true, threads),
                reference)
          << "corpus[" << i * 2 << "] at num_threads=" << threads;
    }
  }
}

TEST(InternDifferential, SummaryCodecBytesAreUnchanged) {
  // The persistent cache stores EncodeSummary(...) blobs keyed by a
  // content-addressed fingerprint; if interning perturbed the encoded
  // bytes, every pre-interner cache on disk would silently miss (or
  // worse, a shared DAG would encode differently cold vs warm). The
  // codec writes expression back-references by pointer identity in
  // traversal order, which interning preserves: maximal sharing both
  // ways, same bytes.
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_FALSE(corpus.empty());
  const Binary& binary = corpus[0];
  CfgBuilder builder(binary);
  auto program = builder.BuildProgram();
  ASSERT_TRUE(program.ok());
  SymEngine engine(binary);
  CallGraph graph = CallGraph::Build(*program);

  ProgramAnalysis legacy, interned;
  {
    ScopedExprInterning off(false);
    legacy = RunBottomUp(*program, graph, engine);
  }
  {
    ScopedExprInterning on(true);
    interned = RunBottomUp(*program, graph, engine);
  }
  ASSERT_EQ(legacy.summaries.size(), interned.summaries.size());
  for (const auto& [name, summary] : legacy.summaries) {
    auto it = interned.summaries.find(name);
    ASSERT_NE(it, interned.summaries.end()) << name;
    EXPECT_EQ(EncodeSummary(it->second), EncodeSummary(summary))
        << name << ": codec bytes changed under interning";
  }
}

}  // namespace
}  // namespace dtaint
