#include <gtest/gtest.h>

#include "src/baseline/worklist_ddg.h"
#include "src/binary/writer.h"
#include "src/isa/asm_builder.h"

namespace dtaint {
namespace {

Program BuildProgramFrom(BinaryWriter& writer) {
  Binary bin = writer.Build().value();
  // Keep the Binary alive for the Program's lifetime via a static; the
  // tests below only need one program at a time.
  static Binary held;
  held = std::move(bin);
  CfgBuilder builder(held);
  return builder.BuildProgram().value();
}

TEST(Baseline, AnalyzesEveryReachableFunction) {
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("leaf");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("main");
    b.Call("leaf");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Program program = BuildProgramFrom(writer);
  BaselineStats stats = RunWorklistDdg(program, {"main"});
  EXPECT_EQ(stats.contexts_analyzed, 2u);
  EXPECT_GT(stats.block_executions, 0u);
}

TEST(Baseline, ContextSensitivityMultipliesWork) {
  // leaf called from two different sites -> two contexts for leaf.
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("leaf");
    b.MovI(1, 1);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("mid");
    b.Call("leaf");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("main");
    b.Call("leaf");
    b.Call("mid");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Program program = BuildProgramFrom(writer);
  BaselineStats stats = RunWorklistDdg(program, {"main"});
  // main(1) + leaf via main + mid + leaf via mid = 4 contexts for 3 fns.
  EXPECT_EQ(stats.contexts_analyzed, 4u);
  int leaf_contexts = 0;
  for (const std::string& name : stats.context_functions) {
    if (name == "leaf") ++leaf_contexts;
  }
  EXPECT_EQ(leaf_contexts, 2);
}

TEST(Baseline, DependenceEdgesMaterialized) {
  BinaryWriter writer(Arch::kDtArm, "t");
  FnBuilder b("f");
  b.MovI(1, 5);     // def r1
  b.AddI(2, 1, 1);  // use r1, def r2
  b.MovR(3, 2);     // use r2
  b.StrW(3, 13, 0); // use r3, def mem
  b.LdrW(4, 13, 0); // use mem
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Program program = BuildProgramFrom(writer);
  BaselineStats stats = RunWorklistDdg(program, {"f"});
  EXPECT_GE(stats.dependence_edges, 4u);
}

TEST(Baseline, LoopIteratesToFixpoint) {
  BinaryWriter writer(Arch::kDtArm, "t");
  FnBuilder b("f");
  b.MovI(1, 0);
  b.Label("top");
  b.AddI(1, 1, 1);
  b.CmpI(1, 10);
  b.Blt("top");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Program program = BuildProgramFrom(writer);
  BaselineStats stats = RunWorklistDdg(program, {"f"});
  // The loop body executes more than once (merge changes the state).
  EXPECT_GT(stats.block_executions, program.TotalBlocks());
}

TEST(Baseline, RecursionTerminatesViaContextLimit) {
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("rec");
    b.Call("rec");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Program program = BuildProgramFrom(writer);
  BaselineConfig config;
  config.context_depth = 2;
  BaselineStats stats = RunWorklistDdg(program, {"rec"}, config);
  // k-limiting folds the infinite chain onto finitely many contexts.
  EXPECT_LE(stats.contexts_analyzed, 4u);
}

TEST(Baseline, BudgetExhaustionFlagged) {
  BinaryWriter writer(Arch::kDtArm, "t");
  for (int i = 9; i >= 0; --i) {
    FnBuilder b("f" + std::to_string(i));
    if (i < 9) {
      b.Call("f" + std::to_string(i + 1));
      b.Call("f" + std::to_string(i + 1));
    }
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Program program = BuildProgramFrom(writer);
  BaselineConfig config;
  config.max_contexts = 5;
  BaselineStats stats = RunWorklistDdg(program, {"f0"}, config);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_EQ(stats.contexts_analyzed, 5u);
}

TEST(Baseline, DefaultRootsAreUncalledFunctions) {
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("helper");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("entry");
    b.Call("helper");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Program program = BuildProgramFrom(writer);
  BaselineStats stats = RunWorklistDdg(program);  // no explicit roots
  EXPECT_EQ(stats.context_functions.front(), "entry");
}

}  // namespace
}  // namespace dtaint

// ---- naive reachability baseline (appended) ---------------------------------

#include "src/baseline/naive_reachability.h"

namespace dtaint {
namespace {

TEST(NaiveReachability, FlagsCoReachableSinkEvenWhenSafe) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("getenv");
  writer.AddImport("system");
  {
    // A function that calls a source and, through a callee, a sink —
    // but with NO data flow between them.
    FnBuilder b("use_sink");
    b.MovConst(0, kRodataBase);
    b.Call("system");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("use_source");
    b.MovI(0, 0);
    b.Call("getenv");
    b.Call("use_sink");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  writer.AddRodata({'l', 's', 0});
  Binary bin = writer.Build().value();
  CfgBuilder builder(bin);
  Program program = builder.BuildProgram().value();
  auto findings = NaiveReachabilityScan(program);
  // The naive scanner cries wolf: constant-arg system() is flagged.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].sink, "system");
  EXPECT_EQ(findings[0].sink_function, "use_sink");
  EXPECT_EQ(findings[0].source, "getenv");
}

TEST(NaiveReachability, SilentWithoutSources) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("system");
  FnBuilder b("f");
  b.Call("system");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  CfgBuilder builder(bin);
  Program program = builder.BuildProgram().value();
  EXPECT_TRUE(NaiveReachabilityScan(program).empty());
}

TEST(NaiveReachability, UnreachableSinkNotFlagged) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("getenv");
  writer.AddImport("system");
  {
    FnBuilder b("island_sink");  // nobody calls it, it calls nobody
    b.Call("system");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("island_source");
    b.MovI(0, 0);
    b.Call("getenv");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Binary bin = writer.Build().value();
  CfgBuilder builder(bin);
  Program program = builder.BuildProgram().value();
  EXPECT_TRUE(NaiveReachabilityScan(program).empty());
}

}  // namespace
}  // namespace dtaint
