#include <gtest/gtest.h>

#include "src/binary/writer.h"
#include "src/cfg/cfg_builder.h"
#include "src/synth/firmware_synth.h"
#include "src/synth/paper_images.h"

namespace dtaint {
namespace {

ProgramSpec BasicSpec() {
  ProgramSpec spec;
  spec.name = "t";
  spec.arch = Arch::kDtArm;
  spec.seed = 7;
  spec.filler_functions = 20;
  PlantSpec p;
  p.id = "x";
  p.pattern = VulnPattern::kDirect;
  p.source = "getenv";
  p.sink = "system";
  spec.plants = {p};
  return spec;
}

TEST(Synth, FunctionCountMatchesSpec) {
  ProgramSpec spec = BasicSpec();
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok());
  size_t expected = 1 /*main*/ + spec.filler_functions +
                    PlantFunctionCount(spec.plants[0]);
  EXPECT_EQ(out->binary.symbols.size(), expected);
  EXPECT_NE(out->binary.FindSymbol("main"), nullptr);
  EXPECT_EQ(out->binary.entry, out->binary.FindSymbol("main")->addr);
}

TEST(Synth, PlantFunctionCounts) {
  PlantSpec p;
  p.pattern = VulnPattern::kDirect;
  EXPECT_EQ(PlantFunctionCount(p), 1);
  p.pattern = VulnPattern::kWrapper;
  EXPECT_EQ(PlantFunctionCount(p), 2);
  p.extra_callers = 2;
  EXPECT_EQ(PlantFunctionCount(p), 4);
  p.pattern = VulnPattern::kAliasChain;
  EXPECT_EQ(PlantFunctionCount(p), 3);
  p.pattern = VulnPattern::kDispatch;
  EXPECT_EQ(PlantFunctionCount(p), 5);
  p.pattern = VulnPattern::kLoopCopy;
  EXPECT_EQ(PlantFunctionCount(p), 1);
}

TEST(Synth, DeterministicForSeed) {
  auto a = SynthesizeBinary(BasicSpec());
  auto b = SynthesizeBinary(BasicSpec());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(BinaryWriter::Serialize(a->binary),
            BinaryWriter::Serialize(b->binary));
}

TEST(Synth, DifferentSeedsDiffer) {
  ProgramSpec spec = BasicSpec();
  auto a = SynthesizeBinary(spec);
  spec.seed = 8;
  auto b = SynthesizeBinary(spec);
  EXPECT_NE(BinaryWriter::Serialize(a->binary),
            BinaryWriter::Serialize(b->binary));
}

TEST(Synth, GroundTruthRecordsPlantMetadata) {
  ProgramSpec spec = BasicSpec();
  spec.plants[0].cve_label = "CVE-0000-0001";
  auto out = SynthesizeBinary(spec);
  ASSERT_EQ(out->ground_truth.size(), 1u);
  const PlantedVuln& v = out->ground_truth[0];
  EXPECT_EQ(v.id, "x");
  EXPECT_EQ(v.sink_function, "x_handler");
  EXPECT_EQ(v.sink, "system");
  EXPECT_EQ(v.source, "getenv");
  EXPECT_EQ(v.vuln_class, VulnClass::kCommandInjection);
  EXPECT_FALSE(v.sanitized);
  EXPECT_EQ(v.cve_label, "CVE-0000-0001");
}

TEST(Synth, GroundTruthFlagsPatternRequirements) {
  ProgramSpec spec = BasicSpec();
  spec.plants[0].pattern = VulnPattern::kAliasChain;
  spec.plants[0].source = "recv";
  spec.plants[0].sink = "strcpy";
  auto out = SynthesizeBinary(spec);
  EXPECT_TRUE(out->ground_truth[0].needs_alias);
  EXPECT_TRUE(out->ground_truth[0].interprocedural);

  spec.plants[0].pattern = VulnPattern::kDispatch;
  spec.plants[0].sink = "memcpy";
  out = SynthesizeBinary(spec);
  EXPECT_TRUE(out->ground_truth[0].needs_structsim);
  EXPECT_EQ(out->ground_truth[0].sink_function, "x_impl");
}

TEST(Synth, LoopPlantRecordsLoopSink) {
  ProgramSpec spec = BasicSpec();
  spec.plants[0].pattern = VulnPattern::kLoopCopy;
  spec.plants[0].source = "recv";
  spec.plants[0].sink = "loop";
  auto out = SynthesizeBinary(spec);
  EXPECT_EQ(out->ground_truth[0].sink, "loop");
}

TEST(Synth, UnsupportedSourceFails) {
  ProgramSpec spec = BasicSpec();
  spec.plants[0].source = "gets_wild";
  auto out = SynthesizeBinary(spec);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsupported);
}

TEST(Synth, ProgramIsWellFormed) {
  // Every synthesized function must survive CFG recovery (decodable,
  // branches in range).
  ProgramSpec spec = BasicSpec();
  spec.filler_functions = 60;
  auto out = SynthesizeBinary(spec);
  CfgBuilder builder(out->binary);
  auto program = builder.BuildProgram();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->functions.size(), out->binary.symbols.size());
}

TEST(Synth, FirmwareWrapsBinaryAndRootfs) {
  FirmwareSpec spec;
  spec.vendor = "V";
  spec.product = "P";
  spec.binary_path = "/bin/app";
  spec.program = BasicSpec();
  auto fw = SynthesizeFirmware(spec);
  ASSERT_TRUE(fw.ok());
  EXPECT_GE(fw->image.files.size(), 5u);
  const FirmwareFile* bin = fw->image.FindFile("/bin/app");
  ASSERT_NE(bin, nullptr);
  EXPECT_FALSE(fw->ground_truth.empty());
  EXPECT_NE(fw->image.FindFile("/etc/passwd"), nullptr);
}

TEST(PaperImages, SpecsMatchTable2Shape) {
  auto specs = PaperImageSpecs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].firmware.vendor, "D-Link");
  EXPECT_EQ(specs[0].firmware.program.arch, Arch::kDtMips);
  EXPECT_EQ(specs[1].firmware.program.arch, Arch::kDtArm);
  EXPECT_EQ(specs[5].firmware.vendor, "Hikvision");
  // Function-count targets: full-scale images match Table II exactly.
  for (int i = 0; i < 4; ++i) {
    const PaperImageSpec& s = specs[i];
    int plant_fns = 1;
    for (const PlantSpec& p : s.firmware.program.plants) {
      plant_fns += PlantFunctionCount(p);
    }
    EXPECT_EQ(plant_fns + s.firmware.program.filler_functions,
              s.paper_table2.functions)
        << s.firmware.product;
    EXPECT_EQ(s.scale, 1.0);
  }
  // Scaled images: 1/10.
  EXPECT_EQ(specs[4].scale, 0.1);
  EXPECT_EQ(specs[5].scale, 0.1);
}

TEST(PaperImages, ZeroDayAndCveCountsMatchPaper) {
  // 13 zero-days and 8 known-vulnerability rows across the six images.
  int zero_days = 0, known = 0, sanitized = 0;
  for (const PaperImageSpec& spec : PaperImageSpecs()) {
    auto fw = BuildPaperImage(spec);
    ASSERT_TRUE(fw.ok());
    for (const PlantedVuln& v : fw->ground_truth) {
      if (v.sanitized) {
        ++sanitized;
      } else if (v.cve_label.find("unknown") != std::string::npos) {
        ++zero_days;
      } else if (!v.cve_label.empty()) {
        ++known;
      }
    }
  }
  EXPECT_EQ(zero_days, 13);
  EXPECT_EQ(known, 8);
  EXPECT_GE(sanitized, 10);
}

}  // namespace
}  // namespace dtaint
