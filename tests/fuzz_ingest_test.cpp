// Deterministic mutation fuzzing of the ingestion boundary (firmware
// extractor + binary loader). The pipeline's first two stages consume
// fully untrusted bytes; this suite proves that seeded byte flips,
// splices, truncations, and garbage extensions over valid images never
// crash, hang, or trip sanitizers — every outcome is a clean Status or
// a successfully parsed (and then loadable) image.
//
// Trial count defaults to 500 per corpus seed and can be dialed with
// DTAINT_FUZZ_N (CI smoke jobs run a reduced N; overnight runs can
// raise it — the mutation schedule is a pure function of the seed, so
// any failure reproduces from the trial number alone).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/binary/loader.h"
#include "src/binary/writer.h"
#include "src/firmware/extractor.h"
#include "src/firmware/packer.h"
#include "src/synth/firmware_synth.h"
#include "src/util/rng.h"

namespace dtaint {
namespace {

int TrialCount() {
  if (const char* env = std::getenv("DTAINT_FUZZ_N")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 500;
}

/// Applies one seeded mutation. Returns false when the mutation was a
/// no-op (e.g. splicing the value that was already there).
bool Mutate(std::vector<uint8_t>& bytes, Rng& rng) {
  if (bytes.empty()) return false;
  const std::vector<uint8_t> before = bytes;
  switch (rng.Below(4)) {
    case 0:  // single bit flip
      bytes[rng.Below(bytes.size())] ^=
          static_cast<uint8_t>(1u << rng.Below(8));
      break;
    case 1: {  // short splice of random bytes
      size_t at = rng.Below(bytes.size());
      size_t len = 1 + rng.Below(8);
      for (size_t i = at; i < bytes.size() && i < at + len; ++i) {
        bytes[i] = static_cast<uint8_t>(rng.Below(256));
      }
      break;
    }
    case 2:  // truncate
      bytes.resize(rng.Below(bytes.size()));
      break;
    default: {  // append garbage
      size_t len = 1 + rng.Below(64);
      for (size_t i = 0; i < len; ++i) {
        bytes.push_back(static_cast<uint8_t>(rng.Below(256)));
      }
      break;
    }
  }
  return bytes != before;
}

std::vector<uint8_t> PackedFirmware(uint64_t seed, Packing packing) {
  FirmwareSpec spec;
  spec.vendor = "Fuzz";
  spec.product = "FZ-1";
  spec.version = "1.0";
  spec.packing = packing;
  spec.binary_path = "/bin/httpd";
  spec.program.name = "httpd";
  spec.program.seed = seed;
  spec.program.filler_functions = 8;
  PlantSpec p;
  p.id = "fz";
  p.pattern = VulnPattern::kDirect;
  p.source = "getenv";
  p.sink = "system";
  spec.program.plants = {p};
  auto fw = SynthesizeFirmware(spec);
  EXPECT_TRUE(fw.ok());
  return FirmwarePacker::Pack(fw->image);
}

/// The full untrusted path: extract, then load every candidate.
/// Nothing here may crash; statuses are free to differ per mutation.
void IngestBlob(const std::vector<uint8_t>& blob) {
  if (BinaryLoader::LooksLikeBinary(blob)) {
    auto bin = BinaryLoader::Load(blob, "fuzz.bin");
    (void)bin;
    return;
  }
  auto extracted = FirmwareExtractor::Extract(blob, "fuzz.dtfw");
  if (!extracted.ok()) return;
  for (const std::string& path : extracted->executable_paths) {
    const FirmwareFile* file = extracted->image.FindFile(path);
    ASSERT_NE(file, nullptr) << path;
    auto bin = BinaryLoader::Load(file->bytes, path);
    (void)bin;
  }
}

TEST(FuzzIngest, MutatedFirmwareImagesNeverCrashTheExtractor) {
  const int trials = TrialCount();
  for (Packing packing : {Packing::kPlain, Packing::kXor}) {
    std::vector<uint8_t> pristine =
        PackedFirmware(31337, packing);
    Rng rng(0xF1220000u + static_cast<uint64_t>(packing));
    int mutated = 0;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<uint8_t> bytes = pristine;
      if (!Mutate(bytes, rng)) continue;
      ++mutated;
      IngestBlob(bytes);
    }
    // The schedule must actually be exercising mutations, not skipping.
    EXPECT_GT(mutated, trials * 9 / 10);
  }
}

TEST(FuzzIngest, MutatedBareBinariesNeverCrashTheLoader) {
  ProgramSpec spec;
  spec.name = "fuzzbin";
  spec.seed = 4242;
  spec.filler_functions = 10;
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok());
  std::vector<uint8_t> pristine = BinaryWriter::Serialize(out->binary);
  ASSERT_TRUE(BinaryLoader::Load(pristine, "pristine").ok());

  const int trials = TrialCount();
  Rng rng(0xB12E55);
  int mutated = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<uint8_t> bytes = pristine;
    if (!Mutate(bytes, rng)) continue;
    ++mutated;
    IngestBlob(bytes);
  }
  EXPECT_GT(mutated, trials * 9 / 10);
}

TEST(FuzzIngest, StackedMutationsNeverCrash) {
  // Deeper damage: several mutations per trial, so whole tables and
  // length prefixes are scrambled together.
  std::vector<uint8_t> fw = PackedFirmware(606, Packing::kPlain);
  ProgramSpec spec;
  spec.name = "deep";
  spec.seed = 77;
  spec.filler_functions = 6;
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok());
  std::vector<uint8_t> bin = BinaryWriter::Serialize(out->binary);

  const int trials = TrialCount() / 2;
  Rng rng(0xDEE9);
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<uint8_t> bytes = rng.Chance(0.5) ? fw : bin;
    int rounds = 2 + static_cast<int>(rng.Below(4));
    for (int i = 0; i < rounds && !bytes.empty(); ++i) Mutate(bytes, rng);
    IngestBlob(bytes);
  }
}

TEST(FuzzIngest, EmptyAndTinyInputsAreRejectedCleanly) {
  EXPECT_FALSE(BinaryLoader::Load({}, "empty").ok());
  EXPECT_FALSE(FirmwareExtractor::Extract({}, "empty").ok());
  std::vector<uint8_t> tiny = {'D', 'T', 'B', '1'};
  EXPECT_FALSE(BinaryLoader::Load(tiny, "tiny").ok());
  std::vector<uint8_t> junk(256, 0xAB);
  EXPECT_FALSE(BinaryLoader::Load(junk, "junk").ok());
  EXPECT_FALSE(FirmwareExtractor::Extract(junk, "junk").ok());
}

}  // namespace
}  // namespace dtaint
