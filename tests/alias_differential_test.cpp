// Differential oracle for the alias-analysis modes.
//
// AliasMode::kOnDemandSSE replaces the eager Algorithm 1 summary
// rewrite with lazy SSE queries, so it is only admissible if it is
// *invisible* on code the eager pass handles: for any input in the
// standard pattern corpus, the full analysis report — findings, sink
// and path counts, resolution counts, everything except wall-clock
// timings, per-run metrics, and the propagation-effort counters that
// legitimately reflect how many twin pairs each mode materializes —
// must be byte-identical between the two modes, at any thread count,
// cold or warm cache.
//
// On the cross-call-alias family (VulnPattern::kCrossCallAlias) the
// oracle must strictly dominate: the indirect call through
// container->ctx->handler is resolvable only from the *linked* entry
// summary, which the eager pass (per-function, pre-link) never sees,
// so the on-demand run finds every eager finding plus at least one
// planted vulnerability the eager run misses.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/cache/summary_cache.h"
#include "src/core/dtaint.h"
#include "src/report/json.h"
#include "src/report/scoring.h"
#include "src/synth/firmware_synth.h"

namespace dtaint {
namespace {

/// 20 synthesized binaries (10 seeds x 2 architectures) rotating
/// through the five standard plant patterns, with a sanitized twin on
/// odd seeds so reports contain both findings and their absence.
std::vector<Binary> BuildCorpus() {
  std::vector<Binary> corpus;
  for (int seed = 0; seed < 10; ++seed) {
    for (Arch arch : {Arch::kDtArm, Arch::kDtMips}) {
      ProgramSpec spec;
      spec.name = "afw" + std::to_string(seed);
      spec.arch = arch;
      spec.seed = 700 + static_cast<uint64_t>(seed);
      spec.filler_functions = 12 + seed;
      PlantSpec p;
      p.id = "v" + std::to_string(seed);
      p.pattern = static_cast<VulnPattern>(seed % 5);
      p.source = (p.pattern == VulnPattern::kDispatch ||
                  p.pattern == VulnPattern::kLoopCopy ||
                  p.pattern == VulnPattern::kAliasChain)
                     ? "recv"
                     : "getenv";
      p.sink = p.pattern == VulnPattern::kLoopCopy
                   ? "loop"
                   : (p.pattern == VulnPattern::kDispatch ? "memcpy"
                                                          : "system");
      spec.plants.push_back(p);
      if (seed % 2) {
        PlantSpec safe = p;
        safe.id = "s" + std::to_string(seed);
        safe.sanitized = true;
        spec.plants.push_back(safe);
      }
      auto out = SynthesizeBinary(spec);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      if (out.ok()) corpus.push_back(std::move(out->binary));
    }
  }
  return corpus;
}

/// Serializes a report with the run-dependent fields zeroed: timings,
/// cache counters, per-run metrics, the timing-ordered hot-function
/// profile — plus the propagation-effort counters that lawfully
/// differ between modes (eager materializes and propagates twin
/// pairs; on-demand does not). Findings, sink/path/resolution counts,
/// and the completeness bit must survive byte comparison.
std::string NormalizedJson(AnalysisReport report) {
  report.ssa_seconds = 0.0;
  report.ddg_seconds = 0.0;
  report.total_seconds = 0.0;
  report.interproc_stats.summary_seconds = 0.0;
  report.interproc_stats.cache_hits = 0;
  report.interproc_stats.cache_misses = 0;
  report.interproc_stats.cache_evictions = 0;
  report.interproc_stats.cache_memory_bytes = 0;
  report.interproc_stats.hot_functions.clear();
  report.interproc_stats.defs_propagated = 0;
  report.interproc_stats.uses_forwarded = 0;
  report.interproc_stats.rets_replaced = 0;
  report.interproc_stats.alias_pairs_added = 0;
  report.pathfinder_stats.paths_explored = 0;
  report.hot_functions.clear();
  report.metrics = obs::MetricsSnapshot{};
  return ReportToJson(report);
}

Result<AnalysisReport> Analyze(const Binary& binary, AliasMode mode,
                               int num_threads = 1,
                               SummaryCache* cache = nullptr) {
  DTaintConfig config;
  config.interproc.alias_mode = mode;
  config.interproc.num_threads = num_threads;
  config.interproc.cache = cache;
  return DTaint(config).Analyze(binary);
}

std::string AnalyzeNormalized(const Binary& binary, AliasMode mode,
                              int num_threads = 1,
                              SummaryCache* cache = nullptr) {
  auto report = Analyze(binary, mode, num_threads, cache);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? NormalizedJson(*report) : std::string();
}

// ---------- the oracle: standard corpus, modes must agree ------------------

TEST(AliasDifferential, EagerAndOnDemandReportsAreByteIdentical) {
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 20u);
  for (size_t i = 0; i < corpus.size(); ++i) {
    std::string eager = AnalyzeNormalized(corpus[i], AliasMode::kEager);
    ASSERT_FALSE(eager.empty());
    EXPECT_EQ(AnalyzeNormalized(corpus[i], AliasMode::kOnDemandSSE), eager)
        << "on-demand run diverged on corpus[" << i << "]";
  }
}

TEST(AliasDifferential, ByteIdenticalAtEveryThreadCount) {
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 10u);
  // Every pattern is covered by the even-indexed (ARM) half alone.
  for (size_t i = 0; i < 5; ++i) {
    const Binary& binary = corpus[i * 2];
    std::string reference =
        AnalyzeNormalized(binary, AliasMode::kEager, /*num_threads=*/1);
    ASSERT_FALSE(reference.empty());
    for (int threads : {1, 2, 8}) {
      EXPECT_EQ(AnalyzeNormalized(binary, AliasMode::kOnDemandSSE, threads),
                reference)
          << "corpus[" << i * 2 << "] at num_threads=" << threads;
    }
  }
}

TEST(AliasDifferential, ColdAndWarmCacheStayByteIdentical) {
  // One shared in-memory cache serves both modes back to back. Mode is
  // part of the engine fingerprint, so eager and on-demand runs miss
  // each other's entries instead of replaying summaries with (or
  // without) the eager twin rewrite baked in; a warm re-run in either
  // mode must reproduce its own cold report byte for byte.
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 6u);
  CacheConfig cache_config;
  SummaryCache cache(cache_config);
  for (size_t i = 0; i < 6; ++i) {
    const Binary& binary = corpus[i];
    std::string eager_cold =
        AnalyzeNormalized(binary, AliasMode::kEager, 1, &cache);
    std::string ondemand_cold =
        AnalyzeNormalized(binary, AliasMode::kOnDemandSSE, 1, &cache);
    ASSERT_FALSE(eager_cold.empty());
    EXPECT_EQ(ondemand_cold, eager_cold)
        << "cold-cache mode divergence on corpus[" << i << "]";
    EXPECT_EQ(AnalyzeNormalized(binary, AliasMode::kEager, 1, &cache),
              eager_cold)
        << "warm eager run diverged on corpus[" << i << "]";
    EXPECT_EQ(AnalyzeNormalized(binary, AliasMode::kOnDemandSSE, 1, &cache),
              ondemand_cold)
        << "warm on-demand run diverged on corpus[" << i << "]";
  }
}

// ---------- the family where on-demand must strictly dominate -------------

std::vector<SynthOutput> BuildCrossCallFamily() {
  std::vector<SynthOutput> family;
  int seed = 0;
  for (Arch arch : {Arch::kDtArm, Arch::kDtMips}) {
    ProgramSpec spec;
    spec.name = "xcall" + std::to_string(seed);
    spec.arch = arch;
    spec.seed = 800 + static_cast<uint64_t>(seed);
    spec.filler_functions = 14;
    PlantSpec vuln;
    vuln.id = "xc" + std::to_string(seed);
    vuln.pattern = VulnPattern::kCrossCallAlias;
    vuln.source = "recv";
    vuln.sink = "memcpy";
    spec.plants.push_back(vuln);
    PlantSpec safe = vuln;
    safe.id = "xs" + std::to_string(seed);
    safe.sanitized = true;
    spec.plants.push_back(safe);
    auto out = SynthesizeBinary(spec);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    if (out.ok()) family.push_back(std::move(*out));
    ++seed;
  }
  return family;
}

std::multiset<std::string> FindingKeys(const AnalysisReport& report) {
  std::multiset<std::string> keys;
  for (const Finding& f : report.findings) keys.insert(f.Summary());
  return keys;
}

TEST(AliasDifferential, CrossCallAliasFamilyOnDemandDominates) {
  std::vector<SynthOutput> family = BuildCrossCallFamily();
  ASSERT_GE(family.size(), 2u);
  for (size_t i = 0; i < family.size(); ++i) {
    auto eager = Analyze(family[i].binary, AliasMode::kEager);
    auto ondemand = Analyze(family[i].binary, AliasMode::kOnDemandSSE);
    ASSERT_TRUE(eager.ok()) << eager.status().ToString();
    ASSERT_TRUE(ondemand.ok()) << ondemand.status().ToString();

    // Superset: every eager finding appears in the on-demand report.
    std::multiset<std::string> eager_keys = FindingKeys(*eager);
    std::multiset<std::string> ondemand_keys = FindingKeys(*ondemand);
    EXPECT_TRUE(std::includes(ondemand_keys.begin(), ondemand_keys.end(),
                              eager_keys.begin(), eager_keys.end()))
        << "family[" << i << "]: on-demand lost an eager finding";

    // The registration-store resolution is exclusive to the oracle.
    EXPECT_GT(ondemand->indirect_calls_resolved,
              eager->indirect_calls_resolved)
        << "family[" << i << "]";

    // At least one planted (non-sanitized) vulnerability is found only
    // by the on-demand run, and it is the cross-call plant's impl.
    DetectionScore eager_score =
        ScoreFindings(eager->findings, family[i].ground_truth);
    DetectionScore ondemand_score =
        ScoreFindings(ondemand->findings, family[i].ground_truth);
    EXPECT_EQ(eager_score.true_positives, 0u)
        << "family[" << i << "]: eager unexpectedly resolved the "
        << "cross-call registration";
    EXPECT_GE(ondemand_score.true_positives, 1u)
        << "family[" << i << "]: on-demand missed the planted vuln";
    EXPECT_EQ(ondemand_score.safe_twin_hits, 0u)
        << "family[" << i << "]: sanitized twin fired";
    bool exclusive_matches_ground_truth = false;
    for (const std::string& id : ondemand_score.found_ids) {
      if (std::find(eager_score.found_ids.begin(),
                    eager_score.found_ids.end(),
                    id) == eager_score.found_ids.end()) {
        exclusive_matches_ground_truth = true;
      }
    }
    EXPECT_TRUE(exclusive_matches_ground_truth)
        << "family[" << i << "]: no on-demand-exclusive ground-truth hit";
  }
}

TEST(AliasDifferential, CrossCallFamilyIsDeterministicAcrossThreads) {
  std::vector<SynthOutput> family = BuildCrossCallFamily();
  ASSERT_FALSE(family.empty());
  const Binary& binary = family[0].binary;
  std::string reference =
      AnalyzeNormalized(binary, AliasMode::kOnDemandSSE, /*num_threads=*/1);
  ASSERT_FALSE(reference.empty());
  for (int threads : {2, 8}) {
    EXPECT_EQ(AnalyzeNormalized(binary, AliasMode::kOnDemandSSE, threads),
              reference)
        << "num_threads=" << threads;
  }
}

}  // namespace
}  // namespace dtaint
