// Differential oracle for the function-summary cache and the threaded
// intraprocedural phase.
//
// The cache is only admissible if it is *invisible*: for any input, the
// full analysis report (findings, def-pair propagation counts, path
// counts — everything except wall-clock timings and the cache's own
// counters) must be byte-identical whether the analysis ran cold,
// entirely from a warm cache, or against a cache whose on-disk entries
// were deliberately corrupted (forcing recovery-by-recompute). The same
// bar applies to `InterprocConfig::num_threads`: any thread count must
// produce the same bytes as the sequential run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/cache/summary_cache.h"
#include "src/cache/summary_codec.h"
#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/dtaint.h"
#include "src/report/json.h"
#include "src/synth/firmware_synth.h"

namespace dtaint {
namespace {

namespace fs = std::filesystem;

/// 20 synthesized firmware binaries (10 seeds x 2 architectures)
/// rotating through all five plant patterns, half with a sanitized
/// twin so reports contain both findings and their absence.
std::vector<Binary> BuildCorpus() {
  std::vector<Binary> corpus;
  for (int seed = 0; seed < 10; ++seed) {
    for (Arch arch : {Arch::kDtArm, Arch::kDtMips}) {
      ProgramSpec spec;
      spec.name = "fw" + std::to_string(seed);
      spec.arch = arch;
      spec.seed = 100 + static_cast<uint64_t>(seed);
      spec.filler_functions = 15 + seed;
      PlantSpec p;
      p.id = "v" + std::to_string(seed);
      p.pattern = static_cast<VulnPattern>(seed % 5);
      p.source = (p.pattern == VulnPattern::kDispatch ||
                  p.pattern == VulnPattern::kLoopCopy ||
                  p.pattern == VulnPattern::kAliasChain)
                     ? "recv"
                     : "getenv";
      p.sink = p.pattern == VulnPattern::kLoopCopy
                   ? "loop"
                   : (p.pattern == VulnPattern::kDispatch ? "memcpy"
                                                          : "system");
      spec.plants.push_back(p);
      if (seed % 2) {
        PlantSpec safe = p;
        safe.id = "s" + std::to_string(seed);
        safe.sanitized = true;
        spec.plants.push_back(safe);
      }
      auto out = SynthesizeBinary(spec);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      if (out.ok()) corpus.push_back(std::move(out->binary));
    }
  }
  return corpus;
}

/// Serializes a report with the run-dependent fields (timings, cache
/// counters, per-run metrics, the timing-ordered hot-function profile)
/// zeroed; everything else must survive byte comparison. Note
/// PathFinderStats is NOT cleared: path-search effort is deterministic
/// and must itself be identical cold vs warm.
std::string NormalizedJson(AnalysisReport report) {
  report.ssa_seconds = 0.0;
  report.ddg_seconds = 0.0;
  report.total_seconds = 0.0;
  report.interproc_stats.summary_seconds = 0.0;
  report.interproc_stats.cache_hits = 0;
  report.interproc_stats.cache_misses = 0;
  report.interproc_stats.cache_evictions = 0;
  report.interproc_stats.cache_memory_bytes = 0;
  report.interproc_stats.hot_functions.clear();
  report.hot_functions.clear();
  report.metrics = obs::MetricsSnapshot{};
  return ReportToJson(report);
}

std::string AnalyzeNormalized(const Binary& binary,
                              SummaryCache* cache = nullptr,
                              int num_threads = 1) {
  DTaintConfig config;
  config.interproc.cache = cache;
  config.interproc.num_threads = num_threads;
  auto report = DTaint(config).Analyze(binary);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? NormalizedJson(*report) : std::string();
}

void CorruptEveryEntry(const fs::path& dir) {
  size_t corrupted = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".dtsc") continue;
    std::vector<uint8_t> bytes;
    {
      std::ifstream in(entry.path(), std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 3] ^= 0xA5;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);
}

// ---------- the oracle -------------------------------------------------------

TEST(CacheDifferential, ColdWarmAndCorruptedRunsAreByteIdentical) {
  fs::path dir = "cache_diff_disk";
  fs::remove_all(dir);
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 20u);

  // Reference: cache disabled entirely.
  std::vector<std::string> cold;
  for (const Binary& binary : corpus) {
    cold.push_back(AnalyzeNormalized(binary));
    ASSERT_FALSE(cold.back().empty());
  }

  CacheConfig cache_config;
  cache_config.disk_dir = dir.string();

  // Populating run: misses store entries; the second bottom-up pass
  // (after indirect-call resolution) already replays decoded blobs, so
  // this run also proves decode(encode(x)) is analysis-equivalent to x.
  {
    SummaryCache cache(cache_config);
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(AnalyzeNormalized(corpus[i], &cache), cold[i])
          << "populating run diverged on corpus[" << i << "]";
    }
    EXPECT_GT(cache.stats().stores, 0u);
  }

  // Warm run: a fresh process-equivalent (new cache instance, empty
  // memory tier) must serve every single function from disk.
  {
    SummaryCache cache(cache_config);
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(AnalyzeNormalized(corpus[i], &cache), cold[i])
          << "warm run diverged on corpus[" << i << "]";
    }
    CacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.disk_hits, 0u);
    EXPECT_EQ(stats.corrupt_entries, 0u);
  }

  // Corrupted run: every on-disk entry is damaged; the cache must
  // detect each one, recompute, and still produce identical bytes.
  {
    CorruptEveryEntry(dir);
    SummaryCache cache(cache_config);
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(AnalyzeNormalized(corpus[i], &cache), cold[i])
          << "corrupted-cache run diverged on corpus[" << i << "]";
    }
    EXPECT_GT(cache.stats().corrupt_entries, 0u);
  }

  fs::remove_all(dir);
}

// ---------- thread-count determinism ----------------------------------------

TEST(CacheDifferential, ThreadCountNeverChangesSummaries) {
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    const Binary& binary = corpus[i * 5];
    CfgBuilder builder(binary);
    auto program = builder.BuildProgram();
    ASSERT_TRUE(program.ok());
    SymEngine engine(binary);
    CallGraph graph = CallGraph::Build(*program);

    // Baseline: sequential summaries, serialized.
    InterprocConfig sequential;
    ProgramAnalysis base = RunBottomUp(*program, graph, engine, sequential);

    for (int threads : {2, 8}) {
      InterprocConfig parallel_config;
      parallel_config.num_threads = threads;
      ProgramAnalysis parallel_result =
          RunBottomUp(*program, graph, engine, parallel_config);
      ASSERT_EQ(parallel_result.summaries.size(), base.summaries.size());
      for (const auto& [name, summary] : base.summaries) {
        auto it = parallel_result.summaries.find(name);
        ASSERT_NE(it, parallel_result.summaries.end()) << name;
        EXPECT_EQ(EncodeSummary(it->second), EncodeSummary(summary))
            << name << " differs at num_threads=" << threads;
      }
    }
  }
}

TEST(CacheDifferential, ThreadsShareOneCacheSafely) {
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 6u);
  SummaryCache cache;  // memory-only, shared across all runs
  for (size_t i = 0; i < 6; ++i) {
    std::string reference = AnalyzeNormalized(corpus[i]);
    EXPECT_EQ(AnalyzeNormalized(corpus[i], &cache, /*num_threads=*/8),
              reference)
        << "corpus[" << i << "]";
  }
  CacheStats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(CacheDifferential, AbsurdThreadCountIsClampedNotFatal) {
  // Regression: num_threads far beyond the function count used to ask
  // the OS for that many threads; the pool is now clamped to the number
  // of work items, so this must both survive and stay deterministic.
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_FALSE(corpus.empty());
  std::string reference = AnalyzeNormalized(corpus[0]);
  EXPECT_EQ(AnalyzeNormalized(corpus[0], nullptr, /*num_threads=*/10000),
            reference);
}

}  // namespace
}  // namespace dtaint
