// Scan supervisor + checkpoint journal tests.
//
// Three layers of coverage:
//  * codecs — the worker wire frame and the journal record format must
//    round-trip exactly (they carry raw JSON fragments whose bytes are
//    part of the resume oracle's identity contract) and reject any
//    truncation or corruption;
//  * the supervisor state machine — retry with tightened budgets,
//    quarantine after 1 + max_retries attempts, the per-image
//    watchdog, resume-from-journal, and stop_on_failure, exercised
//    both in-process (deterministic, fault-injected) and with real
//    forked workers;
//  * the kill-mid-scan resume oracle — a corpus_scan subprocess is
//    crashed at a fault-injected point, rerun with --resume, and the
//    merged fleet JSON must be byte-identical to an uninterrupted
//    run's; a poison image must quarantine without poisoning the rest
//    of the fleet.
//
// All file outputs land under obs_artifacts/ in the working directory
// so CI can upload them from failing jobs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/scan_report.h"
#include "src/resilience/budget.h"
#include "src/resilience/fault.h"
#include "src/resilience/journal.h"
#include "src/resilience/supervisor.h"
#include "src/util/json.h"

namespace dtaint {
namespace {

namespace fs = std::filesystem;

fs::path ArtifactDir() {
  fs::path dir = "obs_artifacts";
  fs::create_directories(dir);
  return dir;
}

/// Fresh per-test scratch directory under the artifact dir.
fs::path ScratchDir(const std::string& name) {
  fs::path dir = ArtifactDir() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultPlan::Global().Clear(); }
  void TearDown() override { FaultPlan::Global().Clear(); }
};

/// A representative outcome exercising every codec field, including
/// JSON-hostile bytes in the raw fragments' neighbors.
ScanOutcome SampleOutcome() {
  ScanOutcome out;
  out.status = "ok";
  out.row = "ok \"quoted\"\n";
  out.complete = true;
  out.functions = 123;
  out.findings = 2;
  out.findings_json = "[{\"sink\": \"strcpy\", \"depth\": 3}]";
  out.has_score = true;
  out.score_json = "{\"tp\": 2, \"fn\": 0, \"fp\": 1}";
  out.tp = 2;
  out.fn = 0;
  out.fp = 1;
  Incident inc;
  inc.binary = "img \\ one";
  inc.phase = "summary";
  inc.detail = "parse_uri";
  inc.status = OutOfRange("budget: steps");
  out.incidents.push_back(inc);
  return out;
}

void ExpectOutcomeEq(const ScanOutcome& got, const ScanOutcome& want) {
  EXPECT_EQ(got.status, want.status);
  EXPECT_EQ(got.row, want.row);
  EXPECT_EQ(got.complete, want.complete);
  EXPECT_EQ(got.functions, want.functions);
  EXPECT_EQ(got.findings, want.findings);
  EXPECT_EQ(got.findings_json, want.findings_json);
  EXPECT_EQ(got.has_score, want.has_score);
  EXPECT_EQ(got.score_json, want.score_json);
  EXPECT_EQ(got.tp, want.tp);
  EXPECT_EQ(got.fn, want.fn);
  EXPECT_EQ(got.fp, want.fp);
  ASSERT_EQ(got.incidents.size(), want.incidents.size());
  for (size_t i = 0; i < got.incidents.size(); ++i) {
    EXPECT_EQ(got.incidents[i].binary, want.incidents[i].binary);
    EXPECT_EQ(got.incidents[i].phase, want.incidents[i].phase);
    EXPECT_EQ(got.incidents[i].detail, want.incidents[i].detail);
    EXPECT_EQ(got.incidents[i].status.code(), want.incidents[i].status.code());
  }
}

// ---------- TightenBudget ----------------------------------------------------

TEST_F(SupervisorTest, TightenBudgetNeverLoosensAndShrinksPerAttempt) {
  AnalysisBudget base;  // everything unlimited
  EXPECT_FALSE(TightenBudget(base, 1).limited());

  // Retry 1: unlimited budgets become limited — a crashing image never
  // gets a *less* constrained second chance.
  AnalysisBudget second = TightenBudget(base, 2);
  EXPECT_TRUE(second.limited());
  EXPECT_GT(second.max_steps, 0u);
  EXPECT_GT(second.max_states, 0u);
  EXPECT_GT(second.max_expr_nodes, 0u);
  EXPECT_GT(second.deadline_ms, 0.0);

  // Each further attempt halves again, monotonically.
  AnalysisBudget prev = second;
  for (int attempt = 3; attempt < 8; ++attempt) {
    AnalysisBudget next = TightenBudget(base, attempt);
    EXPECT_LE(next.max_steps, prev.max_steps) << "attempt " << attempt;
    EXPECT_LE(next.max_states, prev.max_states) << "attempt " << attempt;
    EXPECT_LE(next.max_expr_nodes, prev.max_expr_nodes)
        << "attempt " << attempt;
    EXPECT_LE(next.deadline_ms, prev.deadline_ms) << "attempt " << attempt;
    EXPECT_TRUE(next.limited());
    prev = next;
  }

  // A base stricter than the degraded ceiling wins: tightening never
  // raises a limit the caller already set.
  AnalysisBudget strict;
  strict.max_steps = 10;
  strict.deadline_ms = 1.0;
  AnalysisBudget tightened = TightenBudget(strict, 2);
  EXPECT_EQ(tightened.max_steps, 10u);
  EXPECT_DOUBLE_EQ(tightened.deadline_ms, 1.0);
}

// ---------- wire codec -------------------------------------------------------

TEST_F(SupervisorTest, WireFrameRoundTrips) {
  ScanOutcome want = SampleOutcome();
  std::string frame = EncodeWireResult(want);
  auto got = DecodeWireResult(frame);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectOutcomeEq(*got, want);
}

TEST_F(SupervisorTest, WireFrameRejectsCorruption) {
  std::string frame = EncodeWireResult(SampleOutcome());

  // Truncation anywhere — the "child died mid-write" spectrum.
  for (size_t len : {size_t{0}, size_t{3}, size_t{11}, frame.size() - 1}) {
    EXPECT_FALSE(DecodeWireResult(std::string_view(frame).substr(0, len)).ok())
        << "prefix of length " << len << " decoded";
  }
  // Trailing bytes after a complete frame.
  EXPECT_FALSE(DecodeWireResult(frame + "x").ok());
  // Bad magic.
  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeWireResult(bad_magic).ok());
  // Version skew.
  std::string bad_version = frame;
  bad_version[4] = static_cast<char>(kWireVersion + 1);
  EXPECT_FALSE(DecodeWireResult(bad_version).ok());
  // Payload corruption that breaks the JSON.
  std::string bad_payload = frame;
  bad_payload[13] = '\xff';
  EXPECT_FALSE(DecodeWireResult(bad_payload).ok());
}

// ---------- journal records --------------------------------------------------

TEST_F(SupervisorTest, JournalRecordsRoundTrip) {
  JournalRecord done;
  done.type = "image_done";
  done.image = "Tenda AC15";
  done.fingerprint = "00ff00ff";
  done.attempts = 3;
  done.worker_restarts = 2;
  Incident inc;
  inc.binary = "Tenda AC15";
  inc.phase = "supervisor";
  inc.detail = "attempt 1";
  inc.status = Internal("worker signal: signal 11");
  done.incidents.push_back(inc);
  done.outcome = SampleOutcome();

  auto parsed = JournalRecordFromLine(JournalRecordToLine(done));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, "image_done");
  EXPECT_EQ(parsed->image, done.image);
  EXPECT_EQ(parsed->fingerprint, done.fingerprint);
  EXPECT_EQ(parsed->attempts, 3u);
  EXPECT_EQ(parsed->worker_restarts, 2u);
  ASSERT_EQ(parsed->incidents.size(), 1u);
  EXPECT_EQ(parsed->incidents[0].detail, "attempt 1");
  ASSERT_TRUE(parsed->outcome.has_value());
  ExpectOutcomeEq(*parsed->outcome, *done.outcome);

  JournalRecord quarantined;
  quarantined.type = "image_quarantined";
  quarantined.image = "poison";
  quarantined.fingerprint = "beef";
  quarantined.attempts = 2;
  quarantined.reason = "worker signal after 2 attempts";
  auto q = JournalRecordFromLine(JournalRecordToLine(quarantined));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->type, "image_quarantined");
  EXPECT_EQ(q->reason, quarantined.reason);
  EXPECT_FALSE(q->outcome.has_value());
}

TEST_F(SupervisorTest, JournalRecordRejectsMalformedLines) {
  EXPECT_FALSE(JournalRecordFromLine("").ok());
  EXPECT_FALSE(JournalRecordFromLine("not json").ok());
  EXPECT_FALSE(JournalRecordFromLine("{\"v\":1}").ok());
  // Wrong schema version.
  EXPECT_FALSE(
      JournalRecordFromLine(
          R"({"v":99,"type":"image_begin","image":"a","fp":"f"})")
          .ok());
  // Unknown type.
  EXPECT_FALSE(
      JournalRecordFromLine(R"({"v":1,"type":"mystery","image":"a","fp":"f"})")
          .ok());
  // image_done without its outcome.
  EXPECT_FALSE(
      JournalRecordFromLine(
          R"({"v":1,"type":"image_done","image":"a","fp":"f","attempts":1})")
          .ok());
}

TEST_F(SupervisorTest, JournalAppendAndReplayRecoverState) {
  fs::path dir = ScratchDir("journal_replay");
  auto journal = ScanJournal::Open(dir.string());
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  JournalRecord begin_a;
  begin_a.type = "image_begin";
  begin_a.image = "A";
  begin_a.fingerprint = "fa";
  JournalRecord done_a = begin_a;
  done_a.type = "image_done";
  done_a.attempts = 2;
  done_a.outcome = SampleOutcome();
  JournalRecord begin_b;
  begin_b.type = "image_begin";
  begin_b.image = "B";
  begin_b.fingerprint = "fb";
  JournalRecord quarantine_c;
  quarantine_c.type = "image_quarantined";
  quarantine_c.image = "C";
  quarantine_c.fingerprint = "fc";
  quarantine_c.reason = "worker timeout after 1 attempts";
  ASSERT_TRUE(journal->Append(begin_a).ok());
  ASSERT_TRUE(journal->Append(done_a).ok());
  ASSERT_TRUE(journal->Append(begin_b).ok());
  ASSERT_TRUE(journal->Append(quarantine_c).ok());

  auto replay = ScanJournal::Replay(dir.string());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, 4u);
  EXPECT_EQ(replay->garbage_lines, 0u);
  ASSERT_EQ(replay->done.count("fa"), 1u);
  EXPECT_EQ(replay->done.at("fa").attempts, 2u);
  ASSERT_TRUE(replay->done.at("fa").outcome.has_value());
  ExpectOutcomeEq(*replay->done.at("fa").outcome, *done_a.outcome);
  ASSERT_EQ(replay->quarantined.count("fc"), 1u);
  // B began but never finished: the image the dead scan was chewing on.
  ASSERT_EQ(replay->in_flight.size(), 1u);
  EXPECT_EQ(replay->in_flight[0], "B");

  // A missing journal is an empty replay, not an error.
  auto empty = ScanJournal::Replay((dir / "nonexistent").string());
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->records, 0u);
}

TEST_F(SupervisorTest, JournalReplaySurvivesTornWritesAndGarbage) {
  fs::path dir = ScratchDir("journal_torn");
  {
    auto journal = ScanJournal::Open(dir.string());
    ASSERT_TRUE(journal.ok());
    JournalRecord done_a;
    done_a.type = "image_done";
    done_a.image = "A";
    done_a.fingerprint = "fa";
    done_a.outcome = SampleOutcome();
    ASSERT_TRUE(journal->Append(done_a).ok());

    // The next record is deliberately torn: only a prefix, no newline.
    FaultRule rule;
    rule.site = FaultSite::kJournalTorn;
    rule.match = "image_done:B";
    FaultPlan::Global().Install({rule});
    JournalRecord done_b = done_a;
    done_b.image = "B";
    done_b.fingerprint = "fb";
    ASSERT_TRUE(journal->Append(done_b).ok());
    FaultPlan::Global().Clear();

    // The record after the torn one glues onto its line — at-least-once
    // means C's record may be lost with B's; the one after *that* must
    // survive because Append's newline terminated the glued line.
    JournalRecord done_c = done_a;
    done_c.image = "C";
    done_c.fingerprint = "fc";
    ASSERT_TRUE(journal->Append(done_c).ok());
    JournalRecord done_d = done_a;
    done_d.image = "D";
    done_d.fingerprint = "fd";
    ASSERT_TRUE(journal->Append(done_d).ok());
  }
  // Hand-inject free-standing garbage too.
  {
    std::ofstream out(ScanJournal::PathFor(dir.string()),
                      std::ios::binary | std::ios::app);
    out << "}{ total garbage\n";
  }

  auto replay = ScanJournal::Replay(dir.string());
  ASSERT_TRUE(replay.ok());
  EXPECT_GE(replay->garbage_lines, 2u);  // glued torn line + hand garbage
  EXPECT_EQ(replay->done.count("fa"), 1u);
  EXPECT_EQ(replay->done.count("fb"), 0u);  // torn away
  EXPECT_EQ(replay->done.count("fd"), 1u);  // post-tear append survives
  // No phantom entries: a torn record is *lost*, never misparsed.
  for (const auto& [fp, record] : replay->done) {
    EXPECT_TRUE(fp == "fa" || fp == "fc" || fp == "fd") << fp;
  }
}

// ---------- supervisor state machine -----------------------------------------

ScanOutcome OutcomeForIndex(size_t index) {
  ScanOutcome out;
  out.status = "ok";
  out.row = "ok";
  out.complete = true;
  out.functions = 10 + index;
  out.findings = index;
  out.findings_json = "[" + std::to_string(index) + "]";
  out.tp = index;
  return out;
}

std::vector<TaskSpec> Tasks(const std::vector<std::string>& labels) {
  std::vector<TaskSpec> tasks;
  for (const std::string& label : labels) {
    tasks.push_back(TaskSpec{label, "fp_" + label});
  }
  return tasks;
}

TEST_F(SupervisorTest, ForkedWorkersReturnOutcomesInTaskOrder) {
  SupervisorConfig config;
  config.workers = 2;
  ScanSupervisor supervisor(config);
  auto results = supervisor.Run(
      Tasks({"a", "b", "c"}),
      [](size_t index, const AnalysisBudget&) { return OutcomeForIndex(index); });
  ASSERT_EQ(results.size(), 3u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].state, TaskResult::State::kDone) << i;
    EXPECT_EQ(results[i].attempts, 1u);
    EXPECT_FALSE(results[i].in_process);
    EXPECT_FALSE(results[i].resumed);
    ExpectOutcomeEq(results[i].outcome, OutcomeForIndex(i));
  }
  EXPECT_EQ(supervisor.stats().workers_spawned, 3u);
  EXPECT_EQ(supervisor.stats().worker_failures, 0u);
}

TEST_F(SupervisorTest, InProcessModeMatchesForkedResults) {
  SupervisorConfig config;
  config.force_in_process = true;
  ScanSupervisor supervisor(config);
  auto results = supervisor.Run(
      Tasks({"a", "b"}),
      [](size_t index, const AnalysisBudget&) { return OutcomeForIndex(index); });
  ASSERT_EQ(results.size(), 2u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].state, TaskResult::State::kDone);
    EXPECT_TRUE(results[i].in_process);
    ExpectOutcomeEq(results[i].outcome, OutcomeForIndex(i));
  }
  EXPECT_EQ(supervisor.stats().workers_spawned, 0u);
}

TEST_F(SupervisorTest, WorkerDeathRetriesWithTightenedBudgetThenSucceeds) {
  // In-process the fault plan's occurrence counters are shared across
  // attempts, so a count-1 worker_kill fails attempt 1 and lets
  // attempt 2 through — the retry path without any fork.
  FaultRule rule;
  rule.site = FaultSite::kWorkerKill;
  rule.match = "flaky";
  FaultPlan::Global().Install({rule});

  SupervisorConfig config;
  config.force_in_process = true;
  config.max_retries = 2;
  config.backoff_initial_us = 1;
  ScanSupervisor supervisor(config);
  std::vector<bool> budget_limited;
  auto results = supervisor.Run(
      Tasks({"flaky"}), [&](size_t index, const AnalysisBudget& budget) {
        budget_limited.push_back(budget.limited());
        return OutcomeForIndex(index);
      });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, TaskResult::State::kDone);
  EXPECT_EQ(results[0].attempts, 2u);
  EXPECT_EQ(results[0].worker_restarts, 1u);
  ASSERT_EQ(results[0].incidents.size(), 1u);
  EXPECT_EQ(results[0].incidents[0].phase, "supervisor");
  EXPECT_NE(results[0].incidents[0].status.message().find("worker signal"),
            std::string::npos);
  // The first attempt never ran the task (killed before), the retry
  // ran it under a tightened (now limited) budget.
  ASSERT_EQ(budget_limited.size(), 1u);
  EXPECT_TRUE(budget_limited[0]);
  EXPECT_EQ(supervisor.stats().retries, 1u);
  EXPECT_EQ(supervisor.stats().quarantined, 0u);
}

TEST_F(SupervisorTest, PoisonImageQuarantinesWithoutPoisoningTheFleet) {
  // Every forked attempt of "poison" SIGKILLs itself; the two healthy
  // neighbors must complete untouched.
  FaultRule rule;
  rule.site = FaultSite::kWorkerKill;
  rule.match = "poison";
  rule.count = -1;
  FaultPlan::Global().Install({rule});

  SupervisorConfig config;
  config.max_retries = 1;
  config.backoff_initial_us = 1;
  ScanSupervisor supervisor(config);
  auto results = supervisor.Run(
      Tasks({"good0", "poison", "good2"}),
      [](size_t index, const AnalysisBudget&) { return OutcomeForIndex(index); });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].state, TaskResult::State::kDone);
  EXPECT_EQ(results[2].state, TaskResult::State::kDone);
  ExpectOutcomeEq(results[0].outcome, OutcomeForIndex(0));
  ExpectOutcomeEq(results[2].outcome, OutcomeForIndex(2));

  const TaskResult& poison = results[1];
  EXPECT_EQ(poison.state, TaskResult::State::kQuarantined);
  EXPECT_EQ(poison.attempts, 2u);  // 1 + max_retries
  EXPECT_NE(poison.quarantine_reason.find("after 2 attempts"),
            std::string::npos);
  // One incident per failed attempt plus the quarantine verdict.
  ASSERT_EQ(poison.incidents.size(), 3u);
  EXPECT_EQ(poison.incidents.back().detail, "quarantine");
  EXPECT_EQ(supervisor.stats().retries, 1u);
  EXPECT_EQ(supervisor.stats().quarantined, 1u);
}

TEST_F(SupervisorTest, WatchdogKillsHungWorker) {
  FaultRule rule;
  rule.site = FaultSite::kWorkerHang;
  rule.match = "hang";
  rule.count = -1;
  FaultPlan::Global().Install({rule});

  SupervisorConfig config;
  config.max_retries = 0;
  config.image_timeout_ms = 200;
  ScanSupervisor supervisor(config);
  auto results = supervisor.Run(
      Tasks({"hang"}),
      [](size_t index, const AnalysisBudget&) { return OutcomeForIndex(index); });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, TaskResult::State::kQuarantined);
  EXPECT_NE(results[0].quarantine_reason.find("timeout"), std::string::npos);
}

TEST_F(SupervisorTest, MemLimitTurnsRunawayAllocationIntoOomFailure) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "RLIMIT_AS is meaningless under sanitizers";
#else
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "RLIMIT_AS is meaningless under sanitizers";
#endif
#endif
  SupervisorConfig config;
  config.max_retries = 0;
  config.mem_limit_mb = 128;
  ScanSupervisor supervisor(config);
  auto results = supervisor.Run(
      Tasks({"hog"}), [](size_t, const AnalysisBudget&) {
        // Far past RLIMIT_AS; the child's bad_alloc handler exits with
        // kWorkerExitOom. Touch pages so the optimizer keeps the vector.
        std::vector<char> hog;
        hog.resize(size_t{1} << 31, 'x');
        ScanOutcome out;
        out.status = "ok";
        out.functions = static_cast<uint64_t>(hog.back());
        return out;
      });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, TaskResult::State::kQuarantined);
  EXPECT_NE(results[0].quarantine_reason.find("oom"), std::string::npos);
#endif
}

TEST_F(SupervisorTest, StopOnFailureSkipsRemainingTasks) {
  FaultRule rule;
  rule.site = FaultSite::kWorkerKill;
  rule.match = "poison";
  rule.count = -1;
  FaultPlan::Global().Install({rule});

  SupervisorConfig config;
  config.force_in_process = true;
  config.max_retries = 0;
  config.stop_on_failure = true;
  ScanSupervisor supervisor(config);
  int ran = 0;
  auto results = supervisor.Run(
      Tasks({"poison", "late0", "late1"}),
      [&](size_t index, const AnalysisBudget&) {
        ++ran;
        return OutcomeForIndex(index);
      });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].state, TaskResult::State::kQuarantined);
  EXPECT_EQ(results[1].state, TaskResult::State::kSkipped);
  EXPECT_EQ(results[2].state, TaskResult::State::kSkipped);
  EXPECT_EQ(ran, 0);
}

TEST_F(SupervisorTest, ResumeReplaysJournalWithoutRescanning) {
  fs::path dir = ScratchDir("supervisor_resume");
  std::vector<TaskSpec> tasks = Tasks({"a", "b"});
  int scans = 0;
  TaskFn fn = [&](size_t index, const AnalysisBudget&) {
    ++scans;
    return OutcomeForIndex(index);
  };

  SupervisorConfig config;
  config.force_in_process = true;
  config.journal_dir = dir.string();
  {
    ScanSupervisor first(config);
    auto results = first.Run(tasks, fn);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].state, TaskResult::State::kDone);
    EXPECT_EQ(scans, 2);
  }

  config.resume = true;
  ScanSupervisor second(config);
  auto results = second.Run(tasks, fn);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(scans, 2) << "resume must not re-scan journaled images";
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].state, TaskResult::State::kDone);
    EXPECT_TRUE(results[i].resumed);
    ExpectOutcomeEq(results[i].outcome, OutcomeForIndex(i));
  }
  EXPECT_EQ(second.stats().resumed, 2u);

  // A changed blob (different fingerprint, same label) is re-scanned:
  // the journal keys on content, not on the human label.
  std::vector<TaskSpec> changed = tasks;
  changed[1].fingerprint = "fp_b_v2";
  ScanSupervisor third(config);
  auto results3 = third.Run(changed, fn);
  EXPECT_EQ(scans, 3);
  EXPECT_TRUE(results3[0].resumed);
  EXPECT_FALSE(results3[1].resumed);
}

// ---------- scan_report supervisor aggregation -------------------------------

TEST_F(SupervisorTest, ScanReportAggregatesSupervisorLifecycle) {
  // Two streams from the same fleet: the first run retried "flaky"
  // once and quarantined "poison"; the resumed run replayed "flaky"
  // from the journal. Rows must merge by image name across streams.
  const std::string first_run =
      "{\"v\":1,\"type\":\"stream_begin\",\"ts_ms\":0,\"tid\":0}\n"
      "{\"v\":1,\"type\":\"image_begin\",\"ts_ms\":1,\"tid\":0,"
      "\"image\":\"flaky\",\"arch\":\"arm\",\"packing\":\"none\"}\n"
      "{\"v\":1,\"type\":\"worker_exit\",\"ts_ms\":2,\"tid\":0,"
      "\"image\":\"flaky\",\"attempt\":1,\"failure\":\"signal\"}\n"
      "{\"v\":1,\"type\":\"image_retry\",\"ts_ms\":3,\"tid\":0,"
      "\"image\":\"flaky\",\"next_attempt\":2,\"failure\":\"signal\","
      "\"backoff_us\":100}\n"
      "{\"v\":1,\"type\":\"image_begin\",\"ts_ms\":4,\"tid\":0,"
      "\"image\":\"flaky\",\"arch\":\"arm\",\"packing\":\"none\"}\n"
      "{\"v\":1,\"type\":\"image_end\",\"ts_ms\":5,\"tid\":0,"
      "\"image\":\"flaky\",\"status\":\"ok\",\"complete\":true,"
      "\"functions\":7,\"findings\":1,\"duration_ms\":2.0}\n"
      "{\"v\":1,\"type\":\"worker_exit\",\"ts_ms\":6,\"tid\":0,"
      "\"image\":\"poison\",\"attempt\":1,\"failure\":\"signal\"}\n"
      "{\"v\":1,\"type\":\"image_quarantined\",\"ts_ms\":7,\"tid\":0,"
      "\"image\":\"poison\",\"attempts\":1,\"reason\":\"worker signal\"}\n"
      "{\"v\":1,\"type\":\"stream_end\",\"ts_ms\":8,\"tid\":0}\n";
  const std::string resumed_run =
      "{\"v\":1,\"type\":\"stream_begin\",\"ts_ms\":0,\"tid\":0}\n"
      "{\"v\":1,\"type\":\"image_resumed\",\"ts_ms\":1,\"tid\":0,"
      "\"image\":\"flaky\",\"status\":\"ok\",\"attempts\":2}\n"
      "{\"v\":1,\"type\":\"stream_end\",\"ts_ms\":2,\"tid\":0}\n";

  obs::ScanAggregate agg;
  obs::AggregateEvents(first_run, &agg);
  obs::AggregateEvents(resumed_run, &agg);
  obs::FinalizeAggregate(&agg, obs::ScanReportOptions{});

  EXPECT_EQ(agg.image_retries, 1u);
  EXPECT_EQ(agg.quarantined_images, 1u);
  EXPECT_EQ(agg.worker_exits, 2u);
  EXPECT_EQ(agg.resumed_images, 1u);

  // One logical row per image, with the attempt count folded in.
  ASSERT_EQ(agg.images.size(), 2u);
  EXPECT_EQ(agg.images[0].image, "flaky");
  EXPECT_EQ(agg.images[0].status, "ok");
  EXPECT_EQ(agg.images[0].attempts, 2u);
  EXPECT_TRUE(agg.images[0].resumed);
  EXPECT_EQ(agg.images[1].image, "poison");
  EXPECT_EQ(agg.images[1].status, "quarantined");

  std::string md = obs::AggregateToMarkdown(agg);
  EXPECT_NE(md.find("| Attempts |"), std::string::npos);
  EXPECT_NE(md.find("supervisor: 1 retried, 1 quarantined"),
            std::string::npos);
  EXPECT_NE(md.find("(resumed)"), std::string::npos);

  auto json = ParseJson(obs::AggregateToJson(agg));
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(static_cast<int>(json->Find("quarantined_images")->number()), 1);
  EXPECT_EQ(static_cast<int>(json->Find("image_retries")->number()), 1);
  const auto& images = json->Find("images")->array();
  ASSERT_EQ(images.size(), 2u);
  EXPECT_EQ(static_cast<int>(images[0].Find("attempts")->number()), 2);
  EXPECT_TRUE(images[0].Find("resumed")->boolean());
}

// ---------- kill-mid-scan resume oracle (corpus_scan subprocess) -------------

const char* CorpusScanBin() { return std::getenv("DTAINT_CORPUS_SCAN_BIN"); }

int RunScan(const std::string& bin, const std::string& args) {
  std::string cmd =
      "\"" + bin + "\" --heartbeat-ms 0 " + args + " > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

TEST_F(SupervisorTest, ResumeOracleSurvivesKillMidScan) {
  const char* bin = CorpusScanBin();
  if (!bin) GTEST_SKIP() << "DTAINT_CORPUS_SCAN_BIN not set";
  fs::path dir = ScratchDir("resume_oracle");
  fs::path clean_json = dir / "clean.json";
  fs::path resumed_json = dir / "resumed.json";
  fs::path clean_journal = dir / "journal_clean";
  fs::path crash_journal = dir / "journal_crash";

  // Ground truth: the corpus scanned to completion with isolation on.
  ASSERT_EQ(RunScan(bin, "--isolate --journal \"" + clean_journal.string() +
                             "\" --json-out \"" + clean_json.string() + "\""),
            0);
  std::string want = ReadAll(clean_json);
  ASSERT_FALSE(want.empty());

  // Kill the scan mid-fleet at a deterministic point: the supervisor
  // consults the crash site right after journaling image_begin.
  ::setenv("DTAINT_FAULTS", "crash@Tenda AC15", 1);
  int rc_crash =
      RunScan(bin, "--isolate --journal \"" + crash_journal.string() +
                       "\" --json-out \"" + (dir / "partial.json").string() +
                       "\"");
  ::unsetenv("DTAINT_FAULTS");
  EXPECT_NE(rc_crash, 0) << "crash fault should have killed the scan";
  // The journal holds whole parseable records — including the begin of
  // the image the scan died on.
  auto replay = ScanJournal::Replay(crash_journal.string());
  ASSERT_TRUE(replay.ok());
  EXPECT_GT(replay->records, 0u);
  ASSERT_FALSE(replay->in_flight.empty());
  EXPECT_EQ(replay->in_flight[0], "Tenda AC15");

  // Resume. The merged fleet JSON must be byte-identical to the
  // uninterrupted run's — kill -9 plus --resume == never killed.
  ASSERT_EQ(RunScan(bin, "--isolate --resume --journal \"" +
                             crash_journal.string() + "\" --json-out \"" +
                             resumed_json.string() + "\""),
            0);
  EXPECT_EQ(ReadAll(resumed_json), want) << "resume oracle violated";
}

TEST_F(SupervisorTest, PoisonImageQuarantinedInFleetScan) {
  const char* bin = CorpusScanBin();
  if (!bin) GTEST_SKIP() << "DTAINT_CORPUS_SCAN_BIN not set";
  fs::path dir = ScratchDir("poison_fleet");
  fs::path json_path = dir / "poison.json";
  fs::path events_path = dir / "poison.ndjson";

  ::setenv("DTAINT_FAULTS", "worker_kill@Tenda AC15:*", 1);
  int rc = RunScan(bin, "--isolate --max-retries 1 --json-out \"" +
                            json_path.string() + "\" --events-out \"" +
                            events_path.string() + "\"");
  ::unsetenv("DTAINT_FAULTS");
  EXPECT_EQ(rc, 0) << "a poison image must not fail the fleet run";

  auto fleet = ParseJson(ReadAll(json_path));
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  const JsonValue* totals = fleet->Find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(static_cast<int>(totals->Find("quarantined")->number()), 1);
  EXPECT_EQ(static_cast<int>(totals->Find("retries")->number()), 1);
  EXPECT_EQ(static_cast<int>(totals->Find("worker_restarts")->number()), 2);

  size_t ok_images = 0;
  bool poison_seen = false;
  for (const JsonValue& image : fleet->Find("images")->array()) {
    std::string label = std::string(image.Find("label")->string());
    std::string status = std::string(image.Find("status")->string());
    if (label == "Tenda AC15") {
      poison_seen = true;
      EXPECT_EQ(status, "quarantined");
      EXPECT_EQ(static_cast<int>(image.Find("attempts")->number()), 2);
    } else {
      EXPECT_NE(status, "quarantined") << label;
      if (status == "ok") ++ok_images;
    }
  }
  EXPECT_TRUE(poison_seen);
  EXPECT_GE(ok_images, 4u) << "healthy images must complete untouched";

  // The lifecycle events feed scan_report: one quarantined row there too.
  auto agg = obs::AggregateEventFiles({events_path.string()});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->quarantined_images, 1u);
  EXPECT_EQ(agg->image_retries, 1u);
  EXPECT_GE(agg->worker_exits, 2u);
}

}  // namespace
}  // namespace dtaint
