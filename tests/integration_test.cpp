// End-to-end pipeline tests: synthesize -> pack -> extract -> load ->
// analyze -> score against planted ground truth.
#include <gtest/gtest.h>

#include "src/binary/loader.h"
#include "src/binary/writer.h"
#include "src/core/dtaint.h"
#include "src/firmware/extractor.h"
#include "src/firmware/packer.h"
#include "src/report/scoring.h"
#include "src/synth/firmware_synth.h"
#include "src/synth/paper_images.h"

namespace dtaint {
namespace {

/// Synthesizes a one-plant program and returns the analysis report.
struct PlantRun {
  AnalysisReport report;
  std::vector<PlantedVuln> ground_truth;
};

PlantRun RunPlant(PlantSpec plant, Arch arch = Arch::kDtArm,
                  DTaintConfig config = {}) {
  ProgramSpec spec;
  spec.name = "t";
  spec.arch = arch;
  spec.seed = 99;
  spec.filler_functions = 3;
  spec.plants = {std::move(plant)};
  auto out = SynthesizeBinary(spec);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  DTaint detector(config);
  auto report = detector.Analyze(out->binary);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return {std::move(*report), out->ground_truth};
}

PlantSpec MakePlant(const std::string& id, VulnPattern pattern,
                    const std::string& source, const std::string& sink,
                    bool sanitized = false, int extra = 0) {
  PlantSpec p;
  p.id = id;
  p.pattern = pattern;
  p.source = source;
  p.sink = sink;
  p.sanitized = sanitized;
  p.extra_callers = extra;
  return p;
}

void ExpectDetected(const PlantRun& run, const std::string& id) {
  DetectionScore score = ScoreFindings(run.report.findings,
                                       run.ground_truth);
  EXPECT_EQ(score.true_positives, 1u)
      << id << ": missed=" << (score.missed_ids.empty()
                                   ? "none"
                                   : score.missed_ids[0])
      << " findings=" << run.report.findings.size();
  EXPECT_EQ(score.safe_twin_hits, 0u) << id;
}

void ExpectClean(const PlantRun& run, const std::string& id) {
  DetectionScore score =
      ScoreFindings(run.report.findings, run.ground_truth);
  EXPECT_EQ(score.safe_twin_hits, 0u) << id << " (sanitized twin fired)";
  EXPECT_EQ(run.report.findings.size(), 0u) << id;
}

// ---- every pattern, vulnerable form, both architectures -------------------

struct PatternCase {
  VulnPattern pattern;
  const char* source;
  const char* sink;
};

class PatternDetection
    : public ::testing::TestWithParam<std::tuple<PatternCase, Arch>> {};

TEST_P(PatternDetection, VulnerableFormIsDetected) {
  const auto& [c, arch] = GetParam();
  PlantRun run =
      RunPlant(MakePlant("p1", c.pattern, c.source, c.sink), arch);
  ExpectDetected(run, std::string(c.source) + "->" + c.sink);
}

TEST_P(PatternDetection, SanitizedTwinIsSilent) {
  const auto& [c, arch] = GetParam();
  PlantRun run = RunPlant(
      MakePlant("p1", c.pattern, c.source, c.sink, /*sanitized=*/true),
      arch);
  ExpectClean(run, std::string(c.source) + "->" + c.sink + " (safe)");
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternDetection,
    ::testing::Combine(
        ::testing::Values(
            PatternCase{VulnPattern::kDirect, "getenv", "system"},
            PatternCase{VulnPattern::kDirect, "getenv", "strcpy"},
            PatternCase{VulnPattern::kDirect, "getenv", "sprintf"},
            PatternCase{VulnPattern::kDirect, "recv", "memcpy"},
            PatternCase{VulnPattern::kDirect, "read", "strncpy"},
            PatternCase{VulnPattern::kDirect, "read", "sscanf"},
            PatternCase{VulnPattern::kDirect, "websGetVar", "system"},
            PatternCase{VulnPattern::kDirect, "find_var", "popen"},
            PatternCase{VulnPattern::kDirect, "fgets", "strcat"},
            PatternCase{VulnPattern::kWrapper, "recv", "strcpy"},
            PatternCase{VulnPattern::kWrapper, "getenv", "system"},
            PatternCase{VulnPattern::kWrapper, "read", "sscanf"},
            PatternCase{VulnPattern::kAliasChain, "recv", "strcpy"},
            PatternCase{VulnPattern::kAliasChain, "recv", "memcpy"},
            PatternCase{VulnPattern::kAliasChain, "recv", "system"},
            PatternCase{VulnPattern::kDispatch, "recv", "memcpy"},
            PatternCase{VulnPattern::kLoopCopy, "recv", "loop"},
            PatternCase{VulnPattern::kLoopCopy, "read", "loop"}),
        ::testing::Values(Arch::kDtArm, Arch::kDtMips)));

// ---- feature ablations -----------------------------------------------------

TEST(Ablation, DispatchNeedsStructSim) {
  DTaintConfig no_structsim;
  no_structsim.enable_structsim = false;
  PlantRun off = RunPlant(
      MakePlant("p1", VulnPattern::kDispatch, "recv", "memcpy"),
      Arch::kDtArm, no_structsim);
  DetectionScore score =
      ScoreFindings(off.report.findings, off.ground_truth);
  EXPECT_EQ(score.true_positives, 0u)
      << "dispatch plant should be invisible without structure "
         "similarity";
}

// ---- multiple paths --------------------------------------------------------

TEST(MultiPath, ExtraSourcesYieldExtraPaths) {
  PlantRun run = RunPlant(
      MakePlant("p1", VulnPattern::kWrapper, "getenv", "system", false,
                /*extra=*/2));
  ExpectDetected(run, "multi-path wrapper");
  // One vulnerability, several source->sink paths.
  EXPECT_GE(run.report.vulnerable_paths, 3u);
}

// ---- whole firmware round trip ---------------------------------------------

TEST(FirmwarePipeline, PackExtractAnalyze) {
  FirmwareSpec spec;
  spec.vendor = "TestVendor";
  spec.product = "TV-1";
  spec.binary_path = "/bin/cgi";
  spec.program.name = "cgi";
  spec.program.arch = Arch::kDtMips;
  spec.program.seed = 5;
  spec.program.filler_functions = 10;
  spec.program.plants = {
      MakePlant("fw1", VulnPattern::kDirect, "getenv", "system"),
      MakePlant("fw2", VulnPattern::kDirect, "getenv", "system", true),
  };
  auto fw = SynthesizeFirmware(spec);
  ASSERT_TRUE(fw.ok()) << fw.status().ToString();

  std::vector<uint8_t> blob = FirmwarePacker::Pack(fw->image);
  auto extracted = FirmwareExtractor::Extract(blob);
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  ASSERT_EQ(extracted->executable_paths.size(), 1u);
  EXPECT_EQ(extracted->executable_paths[0], "/bin/cgi");

  const FirmwareFile* file =
      extracted->image.FindFile(extracted->executable_paths[0]);
  ASSERT_NE(file, nullptr);
  auto binary = BinaryLoader::Load(file->bytes);
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();

  DTaint detector;
  auto report = detector.Analyze(*binary);
  ASSERT_TRUE(report.ok());
  DetectionScore score =
      ScoreFindings(report->findings, fw->ground_truth);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.safe_twin_hits, 0u);
}

// ---- the six paper images --------------------------------------------------

TEST(PaperImages, AllSixBuildAndDetectEverything) {
  for (const PaperImageSpec& spec : PaperImageSpecs()) {
    SCOPED_TRACE(spec.firmware.vendor + " " + spec.firmware.product);
    auto fw = BuildPaperImage(spec);
    ASSERT_TRUE(fw.ok()) << fw.status().ToString();
    const FirmwareFile* file =
        fw->image.FindFile(spec.firmware.binary_path);
    ASSERT_NE(file, nullptr);
    auto binary = BinaryLoader::Load(file->bytes);
    ASSERT_TRUE(binary.ok()) << binary.status().ToString();

    DTaint detector;
    auto report = detector.Analyze(*binary);
    ASSERT_TRUE(report.ok());
    DetectionScore score =
        ScoreFindings(report->findings, fw->ground_truth);
    size_t planted = 0;
    for (const PlantedVuln& v : fw->ground_truth) {
      if (!v.sanitized) ++planted;
    }
    EXPECT_EQ(score.true_positives, planted)
        << "missed: "
        << (score.missed_ids.empty() ? "none" : score.missed_ids[0]);
    EXPECT_EQ(score.safe_twin_hits, 0u);
    EXPECT_EQ(score.false_positives, 0u);
  }
}

}  // namespace
}  // namespace dtaint

// ---- paper-count consistency (appended) --------------------------------------

namespace dtaint {
namespace {

TEST(PaperImages, VulnerabilityCountsMatchTableThree) {
  // Table III's vulnerability column: 4, 2, 6, 2, 1, 6 (total 21);
  // Tables IV/V: 8 previously-known + 13 zero-days.
  const int expected[] = {4, 2, 6, 2, 1, 6};
  int idx = 0;
  int total = 0;
  for (const PaperImageSpec& spec : PaperImageSpecs()) {
    SCOPED_TRACE(spec.firmware.product);
    auto fw = BuildPaperImage(spec);
    ASSERT_TRUE(fw.ok());
    const FirmwareFile* file =
        fw->image.FindFile(spec.firmware.binary_path);
    auto binary = BinaryLoader::Load(file->bytes);
    DTaint detector;
    auto report = spec.focus.empty()
                      ? detector.Analyze(*binary)
                      : detector.AnalyzeFunctions(*binary, spec.focus);
    ASSERT_TRUE(report.ok());
    DetectionScore score =
        ScoreFindings(report->findings, fw->ground_truth);
    EXPECT_EQ(score.true_positives,
              static_cast<size_t>(expected[idx]));
    total += static_cast<int>(score.true_positives);
    ++idx;
  }
  EXPECT_EQ(total, 21);  // the paper's headline number
}

}  // namespace
}  // namespace dtaint
