#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/binary/loader.h"
#include "src/binary/writer.h"
#include "src/isa/asm_builder.h"

namespace dtaint {
namespace {

AsmFunction SimpleFn(const std::string& name, int extra_insns = 0) {
  FnBuilder b(name);
  for (int i = 0; i < extra_insns; ++i) b.Nop();
  b.Ret();
  return std::move(b).Finish().value();
}

TEST(Writer, LaysOutFunctionsContiguously) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddFunction(SimpleFn("a", 3));  // 4 insns = 16 bytes
  writer.AddFunction(SimpleFn("b", 0));  // 1 insn
  auto bin = writer.Build();
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(bin->FindSymbol("a")->addr, kTextBase);
  EXPECT_EQ(bin->FindSymbol("a")->size, 16u);
  EXPECT_EQ(bin->FindSymbol("b")->addr, kTextBase + 16);
  EXPECT_EQ(bin->entry, kTextBase);  // first function is the entry
}

TEST(Writer, ResolvesLocalCalls) {
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("caller");
    b.Call("callee");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  writer.AddFunction(SimpleFn("callee"));
  auto bin = writer.Build();
  ASSERT_TRUE(bin.ok());
  // BL at kTextBase, callee at kTextBase+8: offset (8 - 4)/4 = 1 word.
  auto word = bin->ReadWordAt(kTextBase);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(*word & 0xFFFFFF, 1u);
}

TEST(Writer, ResolvesImportsToStubs) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("memcpy");
  writer.AddImport("recv");
  {
    FnBuilder b("f");
    b.Call("recv");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  auto bin = writer.Build();
  ASSERT_TRUE(bin.ok());
  const Import* recv = nullptr;
  for (const Import& imp : bin->imports) {
    if (imp.name == "recv") recv = &imp;
  }
  ASSERT_NE(recv, nullptr);
  EXPECT_EQ(recv->stub_addr, kPltBase + kPltStride);  // second import
  EXPECT_TRUE(bin->IsImportStub(recv->stub_addr));
  EXPECT_EQ(bin->ImportAt(recv->stub_addr)->name, "recv");
  EXPECT_FALSE(bin->IsImportStub(kTextBase));
}

TEST(Writer, DuplicateImportIsNoop) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddImport("memcpy");
  writer.AddImport("memcpy");
  writer.AddFunction(SimpleFn("f"));
  auto bin = writer.Build();
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(bin->imports.size(), 1u);
}

TEST(Writer, DuplicateFunctionFails) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddFunction(SimpleFn("f"));
  writer.AddFunction(SimpleFn("f"));
  EXPECT_FALSE(writer.Build().ok());
}

TEST(Writer, UnresolvedCallFails) {
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("f");
    b.Call("ghost");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  auto bin = writer.Build();
  EXPECT_FALSE(bin.ok());
  EXPECT_EQ(bin.status().code(), StatusCode::kNotFound);
}

TEST(Writer, DataRelocWritesFunctionAddress) {
  BinaryWriter writer(Arch::kDtMips, "t");
  writer.AddFunction(SimpleFn("handler"));
  uint32_t off = writer.AddData(std::vector<uint8_t>(8, 0));
  writer.AddDataReloc({".data", off + 4, "handler"});
  auto bin = writer.Build();
  ASSERT_TRUE(bin.ok());
  auto word = bin->ReadWordAt(kDataBase + off + 4);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(*word, bin->FindSymbol("handler")->addr);
}

TEST(Writer, RelocOutOfBoundsFails) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddFunction(SimpleFn("f"));
  writer.AddData(std::vector<uint8_t>(4, 0));
  writer.AddDataReloc({".data", 100, "f"});
  EXPECT_FALSE(writer.Build().ok());
}

TEST(Writer, SectionsAtFixedBases) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddFunction(SimpleFn("f"));
  writer.AddRodata({1, 2, 3, 4});
  writer.AddData({5, 6, 7, 8});
  writer.AddBss(64);
  auto bin = writer.Build();
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(bin->FindSection(".rodata")->addr, kRodataBase);
  EXPECT_EQ(bin->FindSection(".data")->addr, kDataBase);
  EXPECT_EQ(bin->FindSection(".bss")->addr, kBssBase);
  EXPECT_EQ(bin->FindSection(".bss")->size, 64u);
  EXPECT_TRUE(bin->FindSection(".bss")->bytes.empty());
}

TEST(Binary, ReadWordHonorsEndianness) {
  BinaryWriter writer(Arch::kDtMips, "t");
  writer.AddFunction(SimpleFn("f"));
  writer.AddRodata({0x11, 0x22, 0x33, 0x44});
  auto bin = writer.Build();
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(*bin->ReadWordAt(kRodataBase), 0x11223344u);  // big-endian
}

TEST(Binary, ReadWordUnmappedFails) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddFunction(SimpleFn("f"));
  auto bin = writer.Build();
  EXPECT_FALSE(bin->ReadWordAt(0xDEAD0000).ok());
}

TEST(Binary, SymbolAtCoversRange) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddFunction(SimpleFn("a", 3));
  writer.AddFunction(SimpleFn("b"));
  auto bin = writer.Build();
  EXPECT_EQ(bin->SymbolAt(kTextBase + 8)->name, "a");
  EXPECT_EQ(bin->SymbolAt(kTextBase + 16)->name, "b");
  EXPECT_EQ(bin->SymbolAt(kTextBase + 100), nullptr);
}

TEST(Loader, RoundTripPreservesEverything) {
  BinaryWriter writer(Arch::kDtMips, "router_httpd");
  writer.AddImport("recv");
  writer.AddFunction(SimpleFn("main", 2));
  writer.AddFunction(SimpleFn("helper"));
  writer.AddRodata({'h', 'i', 0});
  writer.AddData({9, 9, 9, 9});
  writer.AddBss(128);
  writer.SetEntry("helper");
  Binary original = writer.Build().value();
  std::vector<uint8_t> bytes = BinaryWriter::Serialize(original);

  auto loaded = BinaryLoader::Load(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->arch, original.arch);
  EXPECT_EQ(loaded->soname, "router_httpd");
  EXPECT_EQ(loaded->entry, original.entry);
  ASSERT_EQ(loaded->sections.size(), original.sections.size());
  for (size_t i = 0; i < original.sections.size(); ++i) {
    EXPECT_EQ(loaded->sections[i].name, original.sections[i].name);
    EXPECT_EQ(loaded->sections[i].addr, original.sections[i].addr);
    EXPECT_EQ(loaded->sections[i].bytes, original.sections[i].bytes);
  }
  ASSERT_EQ(loaded->symbols.size(), 2u);
  EXPECT_EQ(loaded->symbols[0].name, "main");
  ASSERT_EQ(loaded->imports.size(), 1u);
  EXPECT_EQ(loaded->imports[0].name, "recv");
}

TEST(Loader, ChecksumCorruptionDetected) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddFunction(SimpleFn("f"));
  std::vector<uint8_t> bytes =
      BinaryWriter::Serialize(writer.Build().value());
  bytes[bytes.size() / 2] ^= 0x01;
  auto loaded = BinaryLoader::Load(bytes);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptData);
}

TEST(Loader, TruncationDetected) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddFunction(SimpleFn("f"));
  std::vector<uint8_t> bytes =
      BinaryWriter::Serialize(writer.Build().value());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(BinaryLoader::Load(bytes).ok());
}

TEST(Loader, BadMagicRejected) {
  std::vector<uint8_t> bytes{'N', 'O', 'P', 'E', 0, 0, 0, 0};
  EXPECT_FALSE(BinaryLoader::Load(bytes).ok());
  EXPECT_FALSE(BinaryLoader::LooksLikeBinary(bytes));
}

TEST(Loader, MappedSizeSumsSections) {
  BinaryWriter writer(Arch::kDtArm, "t");
  writer.AddFunction(SimpleFn("f"));  // 4 bytes text
  writer.AddBss(100);                 // rounds to 100 (already aligned)
  auto bin = writer.Build();
  EXPECT_EQ(bin->MappedSize(), 4u + 100u);
}

TEST(Loader, CrasherCorpusIsRejectedWithoutCrashing) {
  // Regression corpus: loader inputs that exposed missing validation
  // during development (uint32 wrap in the symbol range check,
  // overlapping sections, payload overrunning its section). Each must
  // come back as a structured error, never a crash or an accept.
  namespace fs = std::filesystem;
  fs::path dir = fs::path(__FILE__).parent_path() / "testing" / "crashers";
  ASSERT_TRUE(fs::exists(dir));
  int replayed = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".dtbin") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes.empty()) << entry.path();
    auto r = BinaryLoader::Load(bytes, entry.path().filename().string());
    EXPECT_FALSE(r.ok()) << entry.path() << " parsed successfully";
    ++replayed;
  }
  EXPECT_GE(replayed, 3);
}

}  // namespace
}  // namespace dtaint
