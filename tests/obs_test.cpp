// Observability layer tests: metrics registry (exact totals under
// concurrency, histogram quantiles, snapshot deltas, JSON round-trip),
// span tracer (golden Chrome-trace JSON re-parsed by the repo's own
// JSON parser, no-allocation guarantee when disabled), leveled logging
// (threshold filtering, sink capture, lazy argument evaluation), and
// the InterprocStats-from-registry cache compatibility view.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/summary_cache.h"
#include "src/core/alias_ondemand.h"
#include "src/core/dtaint.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/stopwatch.h"
#include "src/obs/trace.h"
#include "src/synth/firmware_synth.h"
#include "src/util/json.h"

// Global allocation counter: every operator new in this test binary
// bumps it, so a test can assert a code path allocates nothing.
namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dtaint {
namespace {

// ---------------------------------------------------------------- metrics

TEST(MetricsRegistry, CountersExactUnderConcurrency) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("work.items");
  obs::Histogram& histogram = registry.histogram("work.size");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        counter.Add(3);
        histogram.Observe(7);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(counter.Value(), uint64_t{3} * kThreads * kIters);
  EXPECT_EQ(histogram.Count(), uint64_t{kThreads} * kIters);
  EXPECT_EQ(histogram.Sum(), uint64_t{7} * kThreads * kIters);
  EXPECT_EQ(histogram.Max(), 7u);
}

TEST(MetricsRegistry, StableHandlesAndGetOrCreate) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x");
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.Add(2);
  EXPECT_EQ(registry.counter("x").Value(), 2u);
  registry.gauge("g").Set(1.5);
  EXPECT_DOUBLE_EQ(registry.gauge("g").Value(), 1.5);
}

TEST(MetricsRegistry, DisabledMutationsAreNoOps) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("c");
  obs::Gauge& gauge = registry.gauge("g");
  obs::Histogram& histogram = registry.histogram("h");
  counter.Add(5);
  gauge.Set(2.0);
  histogram.Observe(9);
  registry.SetEnabled(false);
  counter.Add(5);
  gauge.Set(9.0);
  histogram.Observe(9);
  EXPECT_EQ(counter.Value(), 5u);       // unchanged
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.0); // unchanged, still readable
  EXPECT_EQ(histogram.Count(), 1u);
  registry.SetEnabled(true);
  counter.Add(1);
  EXPECT_EQ(counter.Value(), 6u);
}

TEST(Histogram, QuantilesAreDeterministic) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("lat");
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  // Values 1..511 fill buckets 1..9 (cumulative 511 >= rank 500), so
  // p50 reports bucket 9's upper bound 2^9-1 = 511. Rank 950 lands in
  // bucket 10 whose upper bound 1023 clamps to the observed max 1000.
  EXPECT_EQ(h.ValueAtQuantile(0.5), 511u);
  EXPECT_EQ(h.ValueAtQuantile(0.95), 1000u);
  EXPECT_EQ(h.Max(), 1000u);
  obs::HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_EQ(stats.sum, 500500u);
  EXPECT_EQ(stats.p50, 511u);
  // Rank 900 lands in bucket 10 ([512, 1023]), clamped to max 1000 —
  // same bucket as p95/p99 at this sample size.
  EXPECT_EQ(stats.p90, 1000u);
  EXPECT_EQ(stats.p95, 1000u);
  EXPECT_EQ(stats.p99, 1000u);
  // Stats() carries the raw buckets so snapshots can subtract them.
  ASSERT_EQ(stats.buckets.size(),
            static_cast<size_t>(obs::Histogram::kBuckets));
  EXPECT_EQ(stats.buckets[0], 0u);
  EXPECT_EQ(stats.buckets[1], 1u);  // {1}
  EXPECT_EQ(stats.buckets[2], 2u);  // {2, 3}
}

TEST(Histogram, EdgeValues) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("edge");
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);  // empty
  h.Observe(0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);  // bucket 0 holds {0}
  h.Observe(1);
  h.Observe(1);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 1u);
  EXPECT_EQ(h.Count(), 3u);
}

TEST(Histogram, EmptyHistogramPercentilesAllZero) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("empty");
  for (double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.ValueAtQuantile(q), 0u) << "q=" << q;
  }
  obs::HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.sum, 0u);
  EXPECT_EQ(stats.max, 0u);
  EXPECT_EQ(stats.p50, 0u);
  EXPECT_EQ(stats.p99, 0u);
}

TEST(Histogram, SingleSampleAnswersEveryQuantile) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("single");
  h.Observe(42);
  // One sample occupies one bucket; every quantile resolves to that
  // bucket and clamps to the observed max — the sample itself.
  for (double q : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.ValueAtQuantile(q), 42u) << "q=" << q;
  }
  EXPECT_EQ(h.Max(), 42u);
  EXPECT_EQ(h.Sum(), 42u);
  obs::HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.p50, 42u);
  EXPECT_EQ(stats.p99, 42u);
}

TEST(Histogram, OverflowBucketHoldsHugeValues) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("huge");
  h.Observe(UINT64_MAX);
  h.Observe(uint64_t{1} << 63);
  // Both land in the last bucket (bit_width 64); quantiles clamp to the
  // observed max instead of reporting the bucket's notional bound.
  obs::HistogramStats stats = h.Stats();
  ASSERT_EQ(stats.buckets.size(),
            static_cast<size_t>(obs::Histogram::kBuckets));
  EXPECT_EQ(stats.buckets[obs::Histogram::kBuckets - 1], 2u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), UINT64_MAX);
  EXPECT_EQ(h.Max(), UINT64_MAX);
  // Sum saturates arithmetic-wise (wraps mod 2^64) but count stays
  // exact — the report's derived mean is best-effort at this extreme.
  EXPECT_EQ(h.Count(), 2u);
}

TEST(MetricsSnapshot, DeltaSinceSubtractsCounters) {
  obs::MetricsRegistry registry;
  registry.counter("a").Add(5);
  registry.gauge("g").Set(1.0);
  obs::MetricsSnapshot before = registry.Snapshot();
  registry.counter("a").Add(3);
  registry.counter("fresh").Add(2);
  registry.gauge("g").Set(2.5);
  registry.histogram("h").Observe(4);
  obs::MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("a"), 3u);
  EXPECT_EQ(delta.CounterValue("fresh"), 2u);
  EXPECT_EQ(delta.CounterValue("absent"), 0u);
  EXPECT_DOUBLE_EQ(delta.gauges.at("g"), 2.5);  // gauges stay current
  EXPECT_EQ(delta.histograms.at("h").count, 1u);
}

TEST(MetricsSnapshot, DeltaSinceSubtractsHistogramsBucketWise) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("lat");
  // Run 1: a thousand large samples push the cumulative p50 to 511.
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  obs::MetricsSnapshot before = registry.Snapshot();
  // Run 2: three tiny samples. Without bucket-wise subtraction the
  // delta would report run 1's quantiles (cross-run contamination).
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  obs::MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  const obs::HistogramStats& stats = delta.histograms.at("lat");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.sum, 6u);
  // Quantiles recomputed over this run's 3 samples only (rank
  // max(1, floor(q*n)): p50 -> rank 1 -> bucket {1}); without
  // bucket-wise subtraction they'd still report run 1's p50 of 511.
  EXPECT_EQ(stats.p50, 1u);
  EXPECT_EQ(stats.p99, 3u);
}

TEST(MetricsRegistry, ResetZeroesInstrumentsKeepsHandles) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("c");
  obs::Histogram& histogram = registry.histogram("h");
  counter.Add(7);
  histogram.Observe(100);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_EQ(histogram.Sum(), 0u);
  EXPECT_EQ(histogram.ValueAtQuantile(0.5), 0u);
  counter.Add(2);  // the handle survives the reset
  EXPECT_EQ(registry.Snapshot().CounterValue("c"), 2u);
}

TEST(MetricsSnapshot, JsonRoundTripsThroughParser) {
  obs::MetricsRegistry registry;
  registry.counter("cache.hits").Add(7);
  registry.gauge("cache.memory_bytes").Set(4096.0);
  for (uint64_t v = 1; v <= 1000; ++v) {
    registry.histogram("summary.function_micros").Observe(v);
  }
  auto parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* hits = counters->Find("cache.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_DOUBLE_EQ(hits->number(), 7.0);
  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("cache.memory_bytes")->number(), 4096.0);
  const JsonValue* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* micros = histograms->Find("summary.function_micros");
  ASSERT_NE(micros, nullptr);
  EXPECT_DOUBLE_EQ(micros->Find("count")->number(), 1000.0);
  EXPECT_DOUBLE_EQ(micros->Find("p50")->number(), 511.0);
  EXPECT_DOUBLE_EQ(micros->Find("p90")->number(), 1000.0);
  EXPECT_DOUBLE_EQ(micros->Find("p95")->number(), 1000.0);
  EXPECT_DOUBLE_EQ(micros->Find("p99")->number(), 1000.0);
}

// ------------------------------------------------------------------ trace

TEST(Tracer, GoldenChromeJsonRoundTrips) {
  obs::Tracer tracer;
  tracer.Start();
  // Deterministic relative timestamps; the calling thread's id is
  // stable within the test.
  tracer.RecordComplete("binary", "httpd", 0, 5000000);          // 0..5ms
  tracer.RecordComplete("phase", "summary", 1000000, 2000000);   // nested
  tracer.RecordComplete("function", "parse_uri", 1200000, 500000);
  tracer.Stop();
  ASSERT_EQ(tracer.EventCount(), 3u);

  std::string json = tracer.ToChromeJson();
  uint32_t tid = obs::ThreadId();
  std::string golden =
      "{\"traceEvents\":["
      "{\"name\":\"httpd\",\"cat\":\"binary\",\"ph\":\"X\",\"ts\":0.000,"
      "\"dur\":5000.000,\"pid\":1,\"tid\":" + std::to_string(tid) + "},"
      "{\"name\":\"summary\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":1000.000,"
      "\"dur\":2000.000,\"pid\":1,\"tid\":" + std::to_string(tid) + "},"
      "{\"name\":\"parse_uri\",\"cat\":\"function\",\"ph\":\"X\","
      "\"ts\":1200.000,\"dur\":500.000,\"pid\":1,\"tid\":" +
      std::to_string(tid) + "}],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(json, golden);

  // The repo's own JSON parser must accept what the tracer emits.
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array().size(), 3u);
  const JsonValue& phase = events->array()[1];
  EXPECT_EQ(phase.Find("name")->string(), "summary");
  EXPECT_EQ(phase.Find("cat")->string(), "phase");
  EXPECT_EQ(phase.Find("ph")->string(), "X");
  EXPECT_DOUBLE_EQ(phase.Find("ts")->number(), 1000.0);
  EXPECT_DOUBLE_EQ(phase.Find("dur")->number(), 2000.0);
  EXPECT_EQ(parsed->Find("displayTimeUnit")->string(), "ms");
  // Nesting check: the phase span lies inside the binary span, the
  // function span inside the phase span (how Chrome reconstructs the
  // three-level stack from timestamps).
  const JsonValue& bin = events->array()[0];
  const JsonValue& fn = events->array()[2];
  EXPECT_GE(phase.Find("ts")->number(), bin.Find("ts")->number());
  EXPECT_LE(phase.Find("ts")->number() + phase.Find("dur")->number(),
            bin.Find("ts")->number() + bin.Find("dur")->number());
  EXPECT_GE(fn.Find("ts")->number(), phase.Find("ts")->number());
  EXPECT_LE(fn.Find("ts")->number() + fn.Find("dur")->number(),
            phase.Find("ts")->number() + phase.Find("dur")->number());
}

TEST(Tracer, SpansRecordOnlyWhenEnabled) {
  obs::Tracer tracer;
  { obs::Span span(tracer, "phase", "ignored"); }
  EXPECT_EQ(tracer.EventCount(), 0u);
  tracer.Start();
  { obs::Span span(tracer, "phase", "kept"); }
  EXPECT_EQ(tracer.EventCount(), 1u);
  tracer.Stop();
  { obs::Span span(tracer, "phase", "ignored-again"); }
  EXPECT_EQ(tracer.EventCount(), 1u);
  tracer.Start();  // Start clears prior events
  EXPECT_EQ(tracer.EventCount(), 0u);
}

TEST(Tracer, DisabledSpanDoesNotAllocate) {
  obs::Tracer tracer;  // never started
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("pre.created");
  registry.SetEnabled(false);
  size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    obs::Span span(tracer, "phase", "hot-loop");
    counter.Add();
  }
  size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

// -------------------------------------------------------------------- log

struct CapturedLog {
  std::vector<std::pair<obs::LogLevel, std::string>> records;
};

void CaptureSink(obs::LogLevel level, std::string_view component,
                 std::string_view message, void* user) {
  auto* captured = static_cast<CapturedLog*>(user);
  captured->records.push_back(
      {level, std::string(component) + ": " + std::string(message)});
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetLogSink(&CaptureSink, &captured_);
    saved_level_ = obs::GetLogLevel();
  }
  void TearDown() override {
    obs::SetLogSink(nullptr, nullptr);
    obs::SetLogLevel(saved_level_);
  }
  CapturedLog captured_;
  obs::LogLevel saved_level_ = obs::LogLevel::kWarn;
};

TEST_F(LogTest, ParseLogLevel) {
  obs::LogLevel level = obs::LogLevel::kError;
  EXPECT_TRUE(obs::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::ParseLogLevel("warn", &level));
  EXPECT_EQ(level, obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, obs::LogLevel::kWarn);  // untouched on failure
  EXPECT_EQ(obs::LogLevelName(obs::LogLevel::kInfo), "info");
}

TEST_F(LogTest, ThresholdFiltersRecords) {
  obs::SetLogLevel(obs::LogLevel::kWarn);
  DTAINT_LOG(obs::LogLevel::kError, "t", "e%d", 1);
  DTAINT_LOG(obs::LogLevel::kWarn, "t", "w");
  DTAINT_LOG(obs::LogLevel::kInfo, "t", "dropped");
  DTAINT_LOG(obs::LogLevel::kDebug, "t", "dropped");
  ASSERT_EQ(captured_.records.size(), 2u);
  EXPECT_EQ(captured_.records[0].second, "t: e1");
  EXPECT_EQ(captured_.records[1].first, obs::LogLevel::kWarn);

  obs::SetLogLevel(obs::LogLevel::kDebug);
  DTAINT_LOG(obs::LogLevel::kDebug, "t", "now visible");
  ASSERT_EQ(captured_.records.size(), 3u);
  EXPECT_EQ(captured_.records[2].second, "t: now visible");
}

int g_side_effects = 0;
int SideEffect() { return ++g_side_effects; }

TEST_F(LogTest, DisabledStatementDoesNotEvaluateArguments) {
  obs::SetLogLevel(obs::LogLevel::kError);
  g_side_effects = 0;
  DTAINT_LOG(obs::LogLevel::kDebug, "t", "%d", SideEffect());
  EXPECT_EQ(g_side_effects, 0);
  DTAINT_LOG(obs::LogLevel::kError, "t", "%d", SideEffect());
  EXPECT_EQ(g_side_effects, 1);
}

// ----------------------------------------------- cache compatibility view

Binary SynthesizeSmallBinary() {
  ProgramSpec spec;
  spec.name = "obs";
  spec.arch = Arch::kDtArm;
  spec.seed = 77;
  spec.filler_functions = 12;
  PlantSpec p;
  p.id = "v";
  p.pattern = VulnPattern::kDirect;
  p.source = "getenv";
  p.sink = "system";
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  EXPECT_TRUE(out.ok());
  return std::move(out->binary);
}

TEST(CacheCompatView, InterprocStatsMatchCacheStats) {
  Binary binary = SynthesizeSmallBinary();
  SummaryCache cache;  // in-memory only

  DTaintConfig config;
  config.interproc.cache = &cache;

  // Cold run: every lookup misses. The registry-backed InterprocStats
  // view must agree exactly with the cache's own legacy CacheStats.
  auto cold = DTaint(config).Analyze(binary);
  ASSERT_TRUE(cold.ok());
  CacheStats after_cold = cache.stats();
  EXPECT_EQ(cold->interproc_stats.cache_hits, after_cold.hits);
  EXPECT_EQ(cold->interproc_stats.cache_misses, after_cold.misses);
  EXPECT_EQ(cold->interproc_stats.cache_evictions, after_cold.evictions);
  EXPECT_EQ(cold->interproc_stats.cache_memory_bytes,
            after_cold.memory_bytes);
  EXPECT_GT(cold->interproc_stats.cache_misses, 0u);

  // Warm run against the same cache: the report's counters are per-run
  // deltas, the cache's are lifetime totals.
  auto warm = DTaint(config).Analyze(binary);
  ASSERT_TRUE(warm.ok());
  CacheStats after_warm = cache.stats();
  EXPECT_EQ(cold->interproc_stats.cache_hits +
                warm->interproc_stats.cache_hits,
            after_warm.hits);
  EXPECT_EQ(cold->interproc_stats.cache_misses +
                warm->interproc_stats.cache_misses,
            after_warm.misses);
  EXPECT_GT(warm->interproc_stats.cache_hits, 0u);
  EXPECT_EQ(warm->interproc_stats.cache_misses, 0u);

  // The per-run metrics delta embedded in the report agrees too.
  EXPECT_EQ(warm->metrics.CounterValue("cache.hits"),
            warm->interproc_stats.cache_hits);
  EXPECT_EQ(warm->metrics.CounterValue("cache.misses"), 0u);
}

// ------------------------------------------- on-demand alias counters

TEST(MetricsRegistry, AliasOnDemandCountersResetAndDeltaCleanly) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.Reset();

  FunctionSummary summary;
  summary.name = "f";
  DefPair fact;
  fact.d = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 0x8));
  fact.u = SymAdd(SymExpr::Sp0(), 0x40);
  summary.def_pairs.push_back(fact);

  OnDemandAliasOracle oracle;
  oracle.TwinsFor(summary);  // cold: query, no hit
  oracle.TwinsFor(summary);  // warm: query + memo hit
  obs::MetricsSnapshot warm = registry.Snapshot();
  EXPECT_EQ(warm.CounterValue("alias.ondemand.queries"), 2u);
  EXPECT_EQ(warm.CounterValue("alias.ondemand.hits"), 1u);

  // Reset() zeroes the alias counters like every other instrument;
  // a leftover total here would poison the next bench rep.
  registry.Reset();
  obs::MetricsSnapshot zeroed = registry.Snapshot();
  EXPECT_EQ(zeroed.CounterValue("alias.ondemand.queries"), 0u);
  EXPECT_EQ(zeroed.CounterValue("alias.ondemand.hits"), 0u);

  // Per-rep deltas (what the bench harness records between reps) count
  // only the rep's own queries, not the run-up before the snapshot.
  oracle.TwinsFor(summary);
  obs::MetricsSnapshot before = registry.Snapshot();
  oracle.FactsFor(summary);
  oracle.TwinsFor(summary);
  obs::MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("alias.ondemand.queries"), 2u);
  EXPECT_EQ(delta.CounterValue("alias.ondemand.hits"), 2u);
}

// ------------------------------------------------- report-level plumbing

TEST(ReportObservability, AliasOnDemandCountersArePerRunDeltas) {
  Binary binary = SynthesizeSmallBinary();
  DTaintConfig config;
  config.interproc.alias_mode = AliasMode::kOnDemandSSE;
  auto first = DTaint(config).Analyze(binary);
  auto second = DTaint(config).Analyze(binary);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->metrics.CounterValue("alias.ondemand.queries"), 0u);
  // The embedded metrics are per-run deltas off the global registry:
  // two identical back-to-back runs must report identical counts, not
  // an accumulating total.
  EXPECT_EQ(second->metrics.CounterValue("alias.ondemand.queries"),
            first->metrics.CounterValue("alias.ondemand.queries"));
  EXPECT_EQ(second->metrics.CounterValue("alias.ondemand.hits"),
            first->metrics.CounterValue("alias.ondemand.hits"));
  // An eager run never consults the oracle.
  auto eager = DTaint().Analyze(binary);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(eager->metrics.CounterValue("alias.ondemand.queries"), 0u);
}

TEST(ReportObservability, HotFunctionsAndPathStats) {
  Binary binary = SynthesizeSmallBinary();
  DTaint detector;
  auto report = detector.Analyze(binary);
  ASSERT_TRUE(report.ok());

  // Hot-function profile: bounded, sorted descending by time, and
  // populated (the binary has > 10 functions).
  ASSERT_FALSE(report->hot_functions.empty());
  EXPECT_LE(report->hot_functions.size(), 10u);
  for (size_t i = 1; i < report->hot_functions.size(); ++i) {
    EXPECT_GE(report->hot_functions[i - 1].seconds,
              report->hot_functions[i].seconds);
  }

  // Path-search effort flowed into the report; the planted vuln means
  // at least one sink was visited and one path found.
  EXPECT_GT(report->pathfinder_stats.sinks_visited, 0u);
  EXPECT_GT(report->pathfinder_stats.paths_explored, 0u);
  EXPECT_GT(report->pathfinder_stats.paths_found, 0u);
  EXPECT_EQ(report->pathfinder_stats.sanitized_away,
            report->total_paths - report->vulnerable_paths);

  // Per-run metrics delta covers the pipeline phases.
  EXPECT_EQ(report->metrics.CounterValue("lift.functions"),
            report->functions);
  EXPECT_EQ(report->metrics.CounterValue("pathfind.paths_found"),
            report->pathfinder_stats.paths_found);
  auto micros = report->metrics.histograms.find("summary.function_micros");
  ASSERT_NE(micros, report->metrics.histograms.end());
  EXPECT_GT(micros->second.count, 0u);
}

TEST(ReportObservability, MergeHotFunctions) {
  std::vector<HotFunction> a = {{"f1", 3.0, false}, {"f2", 1.0, false}};
  std::vector<HotFunction> b = {{"f2", 2.0, true}, {"f3", 0.5, true}};
  std::vector<HotFunction> merged = MergeHotFunctions(a, b, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].name, "f1");
  EXPECT_EQ(merged[1].name, "f2");
  EXPECT_DOUBLE_EQ(merged[1].seconds, 2.0);  // larger time wins
  EXPECT_TRUE(merged[1].cached);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  obs::Stopwatch watch;
  EXPECT_GE(watch.Seconds(), 0.0);
  EXPECT_GE(watch.Nanos(), 0u);
  watch.Restart();
  EXPECT_GE(watch.Seconds(), 0.0);
}

}  // namespace
}  // namespace dtaint
