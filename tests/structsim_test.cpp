#include <gtest/gtest.h>

#include "src/binary/loader.h"
#include "src/binary/writer.h"
#include "src/cfg/cfg_builder.h"
#include "src/isa/asm_builder.h"
#include "src/core/structsim.h"
#include "src/symexec/engine.h"
#include "src/synth/firmware_synth.h"

namespace dtaint {
namespace {

StructLayout MakeLayout(
    SymRef root,
    std::map<std::string, std::vector<StructField>> groups) {
  StructLayout layout;
  layout.root = std::move(root);
  layout.groups = std::move(groups);
  return layout;
}

TEST(Layout, ExtractFromSummary) {
  FunctionSummary summary;
  // Accesses: deref(arg0+0xC), deref(arg0+0x10), and a second layer
  // deref(deref(arg0+0xC)+0x4).
  SymRef a0 = SymExpr::Arg(0);
  DefPair dp1;
  dp1.d = SymExpr::Deref(SymAdd(a0, 0xC));
  dp1.u = SymExpr::Const(0);
  summary.def_pairs.push_back(dp1);
  UseRecord use1;
  use1.u = SymExpr::Deref(SymAdd(a0, 0x10));
  summary.undefined_uses.push_back(use1);
  UseRecord use2;
  use2.u = SymExpr::Deref(SymAdd(SymExpr::Deref(SymAdd(a0, 0xC)), 0x4));
  summary.undefined_uses.push_back(use2);

  auto layouts = ExtractLayouts(summary);
  ASSERT_EQ(layouts.size(), 1u);
  const StructLayout& layout = layouts[0];
  EXPECT_EQ(layout.root->kind(), SymKind::kArg);
  // Two base groups: "R" and "deref(R+0xc)".
  ASSERT_EQ(layout.groups.size(), 2u);
  ASSERT_TRUE(layout.groups.count("R"));
  EXPECT_TRUE(layout.groups.count("deref(R+0xc)"));
  EXPECT_EQ(layout.groups.at("R").size(), 2u);  // offsets 0xC, 0x10
  EXPECT_EQ(layout.FieldCount(), 3u);
}

TEST(Layout, RootNormalizationAlignsDifferentArgs) {
  // A layout rooted at arg0 in one function and arg2 in another must
  // produce the same group keys.
  FunctionSummary s1, s2;
  UseRecord u1;
  u1.u = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 8));
  s1.undefined_uses.push_back(u1);
  UseRecord u2;
  u2.u = SymExpr::Deref(SymAdd(SymExpr::Arg(2), 8));
  s2.undefined_uses.push_back(u2);
  auto l1 = ExtractLayouts(s1);
  auto l2 = ExtractLayouts(s2);
  ASSERT_EQ(l1.size(), 1u);
  ASSERT_EQ(l2.size(), 1u);
  EXPECT_EQ(l1[0].groups.begin()->first, l2[0].groups.begin()->first);
  EXPECT_GT(LayoutSimilarity(l1[0], l2[0]), 0.0);
}

TEST(Similarity, SelfSimilarityIsGroupCount) {
  StructLayout a = MakeLayout(
      SymExpr::Arg(0),
      {{"R", {{0xC, ValueType::kPtr}, {0x10, ValueType::kInt}}},
       {"deref(R+0xc)", {{0, ValueType::kChar}}}});
  EXPECT_DOUBLE_EQ(LayoutSimilarity(a, a), 2.0);
}

TEST(Similarity, Symmetric) {
  StructLayout a = MakeLayout(
      SymExpr::Arg(0),
      {{"R", {{0x8, ValueType::kPtr}, {0xC, ValueType::kPtr}}}});
  StructLayout b = MakeLayout(
      SymExpr::Arg(0),
      {{"R", {{0xC, ValueType::kPtr}, {0x10, ValueType::kInt}}}});
  EXPECT_DOUBLE_EQ(LayoutSimilarity(a, b), LayoutSimilarity(b, a));
  // Jaccard over offsets {8,C} vs {C,10}: 1/3.
  EXPECT_NEAR(LayoutSimilarity(a, b), 1.0 / 3.0, 1e-9);
}

TEST(Similarity, BaseSetInclusionGate) {
  StructLayout a = MakeLayout(SymExpr::Arg(0),
                              {{"R", {{0, ValueType::kPtr}}},
                               {"deref(R)", {{4, ValueType::kInt}}}});
  StructLayout b = MakeLayout(SymExpr::Arg(0),
                              {{"R", {{0, ValueType::kPtr}}}});
  // base(b) subset of base(a): compatible.
  EXPECT_TRUE(LayoutsCompatible(a, b));
  StructLayout c = MakeLayout(SymExpr::Arg(0),
                              {{"R", {{0, ValueType::kPtr}}},
                               {"deref(R+0x8)", {{0, ValueType::kInt}}}});
  // Neither base set contains the other: incompatible.
  EXPECT_FALSE(LayoutsCompatible(a, c));
  EXPECT_DOUBLE_EQ(LayoutSimilarity(a, c), 0.0);
}

TEST(Similarity, TypeConflictGate) {
  StructLayout a = MakeLayout(SymExpr::Arg(0),
                              {{"R", {{8, ValueType::kPtr}}}});
  StructLayout b = MakeLayout(SymExpr::Arg(0),
                              {{"R", {{8, ValueType::kInt}}}});
  EXPECT_FALSE(LayoutsCompatible(a, b));
  // Unknown unifies with anything.
  StructLayout c = MakeLayout(SymExpr::Arg(0),
                              {{"R", {{8, ValueType::kUnknown}}}});
  EXPECT_TRUE(LayoutsCompatible(a, c));
  // ptr unifies with char*.
  StructLayout d = MakeLayout(SymExpr::Arg(0),
                              {{"R", {{8, ValueType::kCharPtr}}}});
  EXPECT_TRUE(LayoutsCompatible(a, d));
}

TEST(IndirectCalls, DispatchPlantResolvesToImplNotDecoy) {
  ProgramSpec spec;
  spec.name = "t";
  spec.arch = Arch::kDtArm;
  spec.seed = 11;
  spec.filler_functions = 2;
  PlantSpec p;
  p.id = "d1";
  p.pattern = VulnPattern::kDispatch;
  p.source = "recv";
  p.sink = "memcpy";
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok());

  CfgBuilder builder(out->binary);
  Program program = builder.BuildProgram().value();

  // Address-taken set contains both table entries.
  auto taken = AddressTakenFunctions(program);
  EXPECT_EQ(taken.size(), 2u);

  SymEngine engine(out->binary);
  std::map<std::string, FunctionSummary> summaries;
  for (const auto& [name, fn] : program.functions) {
    summaries.emplace(name, engine.Analyze(fn));
  }
  auto resolutions = ResolveIndirectCalls(program, summaries);
  ASSERT_EQ(resolutions.size(), 1u);
  EXPECT_EQ(resolutions[0].caller, "d1_dispatch");
  ASSERT_EQ(resolutions[0].targets.size(), 1u);
  EXPECT_EQ(resolutions[0].targets[0], "d1_impl");
  EXPECT_GT(resolutions[0].similarity, 0.0);
  // The callsite itself was annotated.
  const Function& dispatch = program.functions.at("d1_dispatch");
  bool annotated = false;
  for (const CallSite& cs : dispatch.callsites) {
    if (cs.is_indirect) {
      annotated = true;
      EXPECT_EQ(cs.resolved_targets,
                std::vector<std::string>{"d1_impl"});
    }
  }
  EXPECT_TRUE(annotated);
}

TEST(IndirectCalls, ConstantTargetResolvesDirectly) {
  // A BLR whose target was loaded from a fixed .data slot concretizes
  // during symbolic analysis and resolves without similarity.
  BinaryWriter writer(Arch::kDtArm, "t");
  {
    FnBuilder b("target_fn");
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  uint32_t slot = writer.AddData(std::vector<uint8_t>(4, 0));
  writer.AddDataReloc({".data", slot, "target_fn"});
  {
    FnBuilder b("caller");
    b.MovConst(5, kDataBase + slot);
    b.LdrW(6, 5, 0);
    b.CallReg(6);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  Binary bin = writer.Build().value();
  CfgBuilder builder(bin);
  Program program = builder.BuildProgram().value();
  SymEngine engine(bin);
  std::map<std::string, FunctionSummary> summaries;
  for (const auto& [name, fn] : program.functions) {
    summaries.emplace(name, engine.Analyze(fn));
  }
  auto resolutions = ResolveIndirectCalls(program, summaries);
  ASSERT_EQ(resolutions.size(), 1u);
  EXPECT_EQ(resolutions[0].targets, std::vector<std::string>{"target_fn"});
  EXPECT_EQ(resolutions[0].similarity, -1.0);  // exact marker
}

}  // namespace
}  // namespace dtaint
