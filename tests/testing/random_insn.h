// Shared random-instruction machinery for property-style tests.
//
// RandomInsnForOp fills every field the opcode's format reads with
// uniformly random (in-range) values, so sweeping it over the opcode
// list explores the full encodable space. Used by the encoder round
// trip / differential lifter sweeps in property_test.cpp and by the
// cache fingerprint mutation tests in cache_test.cpp.
#pragma once

#include "src/isa/insn.h"
#include "src/util/rng.h"

namespace dtaint {
namespace testing_util {

inline Insn RandomInsnForOp(Op op, Rng& rng) {
  Insn insn;
  insn.op = op;
  switch (FormatOf(op)) {
    case OpFormat::kR:
      insn.rd = static_cast<uint8_t>(rng.Below(16));
      insn.rn = static_cast<uint8_t>(rng.Below(16));
      insn.rm = static_cast<uint8_t>(rng.Below(16));
      break;
    case OpFormat::kI:
      insn.rd = static_cast<uint8_t>(rng.Below(16));
      insn.rn = static_cast<uint8_t>(rng.Below(16));
      insn.imm = op == Op::kMovHi
                     ? static_cast<int32_t>(rng.Below(0x10000))
                     : static_cast<int32_t>(rng.Range(-32768, 32767));
      break;
    case OpFormat::kB:
      insn.imm = static_cast<int32_t>(rng.Range(-(1 << 23), (1 << 23) - 1));
      break;
    case OpFormat::kNone:
      break;
  }
  return insn;
}

}  // namespace testing_util
}  // namespace dtaint
