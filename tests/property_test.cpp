// Property-based tests (parameterized sweeps) over the core invariants
// listed in DESIGN.md.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "src/binary/loader.h"
#include "src/binary/writer.h"
#include "src/cfg/cfg_builder.h"
#include "src/cfg/loops.h"
#include "src/core/alias_ondemand.h"
#include "src/core/interproc.h"
#include "src/core/structsim.h"
#include "src/firmware/extractor.h"
#include "src/firmware/packer.h"
#include "src/synth/firmware_synth.h"
#include "src/isa/asm_builder.h"
#include "src/isa/decode.h"
#include "src/lifter/lifter.h"
#include "src/util/rng.h"
#include "tests/testing/random_insn.h"

namespace dtaint {
namespace {

using testing_util::RandomInsnForOp;

// ---------- encoder/decoder round trip --------------------------------------

class EncodeRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(EncodeRoundTrip, DecodeOfEncodeIsIdentity) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  for (int i = 0; i < 200; ++i) {
    Insn insn = RandomInsnForOp(GetParam(), rng);
    auto word = Encode(insn);
    ASSERT_TRUE(word.ok()) << insn.ToString(Arch::kDtArm);
    auto back = Decode(*word);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, insn) << insn.ToString(Arch::kDtArm);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodeRoundTrip,
    ::testing::Values(Op::kMovR, Op::kMovI, Op::kMovHi, Op::kAddR,
                      Op::kAddI, Op::kSubR, Op::kSubI, Op::kMulR,
                      Op::kAndR, Op::kAndI, Op::kOrrR, Op::kOrrI,
                      Op::kXorR, Op::kXorI, Op::kLslI, Op::kLsrI,
                      Op::kLdrW, Op::kStrW, Op::kLdrB, Op::kStrB,
                      Op::kLdrWR, Op::kStrWR, Op::kLdrBR, Op::kStrBR,
                      Op::kCmpR, Op::kCmpI, Op::kB, Op::kBeq, Op::kBne,
                      Op::kBlt, Op::kBge, Op::kBle, Op::kBgt, Op::kBl,
                      Op::kBlr, Op::kRet, Op::kNop, Op::kSvc));

// ---------- differential lifter test -----------------------------------------
//
// Machine-level reference interpreter vs. evaluation of the lifted IR,
// over random straight-line instruction sequences. Data memory is
// byte-addressed; multi-byte values use a fixed little-endian
// composition in both interpreters (the ISA's data endianness; only
// instruction *fetch* differs between the flavors).

struct ConcreteState {
  uint32_t regs[kNumIrRegs] = {};
  std::map<uint32_t, uint8_t> mem;

  uint32_t Read(uint32_t addr, int size) const {
    uint32_t v = 0;
    for (int i = size - 1; i >= 0; --i) {
      auto it = mem.find(addr + i);
      v = (v << 8) | (it == mem.end() ? 0 : it->second);
    }
    return v;
  }
  void Write(uint32_t addr, uint32_t value, int size) {
    for (int i = 0; i < size; ++i) {
      mem[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    }
  }
  bool operator==(const ConcreteState& other) const {
    for (int r = 0; r < kNumIrRegs; ++r) {
      if (regs[r] != other.regs[r]) return false;
    }
    return mem == other.mem;
  }
};

/// Reference semantics, straight-line subset.
void StepMachine(const Insn& insn, ConcreteState& s) {
  auto alu = [&](uint32_t a, uint32_t b) -> uint32_t {
    switch (insn.op) {
      case Op::kAddR: case Op::kAddI: return a + b;
      case Op::kSubR: case Op::kSubI: return a - b;
      case Op::kMulR: return a * b;
      case Op::kAndR: case Op::kAndI: return a & b;
      case Op::kOrrR: case Op::kOrrI: return a | b;
      case Op::kXorR: case Op::kXorI: return a ^ b;
      case Op::kLslI: return static_cast<uint32_t>(insn.imm) >= 32
                                 ? 0 : a << insn.imm;
      case Op::kLsrI: return static_cast<uint32_t>(insn.imm) >= 32
                                 ? 0 : a >> insn.imm;
      default: return 0;
    }
  };
  uint32_t imm = static_cast<uint32_t>(insn.imm);
  switch (insn.op) {
    case Op::kMovR: s.regs[insn.rd] = s.regs[insn.rm]; break;
    case Op::kMovI: s.regs[insn.rd] = imm; break;
    case Op::kMovHi:
      s.regs[insn.rd] = (s.regs[insn.rd] & 0xFFFF) | (imm << 16);
      break;
    case Op::kAddR: case Op::kSubR: case Op::kMulR: case Op::kAndR:
    case Op::kOrrR: case Op::kXorR:
      s.regs[insn.rd] = alu(s.regs[insn.rn], s.regs[insn.rm]);
      break;
    case Op::kAddI: case Op::kSubI: case Op::kAndI: case Op::kOrrI:
    case Op::kXorI: case Op::kLslI: case Op::kLsrI:
      s.regs[insn.rd] = alu(s.regs[insn.rn], imm);
      break;
    case Op::kLdrW:
      s.regs[insn.rd] = s.Read(s.regs[insn.rn] + imm, 4);
      break;
    case Op::kLdrB:
      s.regs[insn.rd] = s.Read(s.regs[insn.rn] + imm, 1);
      break;
    case Op::kStrW:
      s.Write(s.regs[insn.rn] + imm, s.regs[insn.rd], 4);
      break;
    case Op::kStrB:
      s.Write(s.regs[insn.rn] + imm, s.regs[insn.rd], 1);
      break;
    case Op::kLdrWR:
      s.regs[insn.rd] = s.Read(s.regs[insn.rn] + s.regs[insn.rm], 4);
      break;
    case Op::kLdrBR:
      s.regs[insn.rd] = s.Read(s.regs[insn.rn] + s.regs[insn.rm], 1);
      break;
    case Op::kStrWR:
      s.Write(s.regs[insn.rn] + s.regs[insn.rm], s.regs[insn.rd], 4);
      break;
    case Op::kStrBR:
      s.Write(s.regs[insn.rn] + s.regs[insn.rm], s.regs[insn.rd], 1);
      break;
    case Op::kCmpR:
      s.regs[kFlagLhs] = s.regs[insn.rn];
      s.regs[kFlagRhs] = s.regs[insn.rm];
      break;
    case Op::kCmpI:
      s.regs[kFlagLhs] = s.regs[insn.rn];
      s.regs[kFlagRhs] = imm;
      break;
    default:
      break;
  }
}

uint32_t EvalIrExpr(const ExprRef& e, const std::vector<uint32_t>& tmps,
                    const ConcreteState& s) {
  switch (e->kind()) {
    case ExprKind::kConst: return e->const_value();
    case ExprKind::kRdTmp: return tmps[e->tmp()];
    case ExprKind::kGet: return s.regs[e->reg()];
    case ExprKind::kLoad:
      return s.Read(EvalIrExpr(e->lhs(), tmps, s), e->load_size());
    case ExprKind::kBinop: {
      uint32_t a = EvalIrExpr(e->lhs(), tmps, s);
      uint32_t b = EvalIrExpr(e->rhs(), tmps, s);
      switch (e->binop()) {
        case BinOp::kAdd: return a + b;
        case BinOp::kSub: return a - b;
        case BinOp::kMul: return a * b;
        case BinOp::kAnd: return a & b;
        case BinOp::kOr: return a | b;
        case BinOp::kXor: return a ^ b;
        case BinOp::kShl: return b >= 32 ? 0 : a << b;
        case BinOp::kShr: return b >= 32 ? 0 : a >> b;
        default: return 0;
      }
    }
  }
  return 0;
}

void RunIrBlock(const IRBlock& block, ConcreteState& s) {
  std::vector<uint32_t> tmps(block.next_tmp, 0);
  for (const Stmt& stmt : block.stmts) {
    switch (stmt.kind) {
      case StmtKind::kIMark:
        break;
      case StmtKind::kWrTmp:
        tmps[stmt.tmp] = EvalIrExpr(stmt.expr, tmps, s);
        break;
      case StmtKind::kPut:
        s.regs[stmt.reg] = EvalIrExpr(stmt.expr, tmps, s);
        break;
      case StmtKind::kStore: {
        uint32_t addr = EvalIrExpr(stmt.addr_expr, tmps, s);
        uint32_t data = EvalIrExpr(stmt.data_expr, tmps, s);
        s.Write(addr, data, stmt.size);
        break;
      }
      case StmtKind::kExit:
        break;  // straight-line programs only
    }
  }
}

class DifferentialLift
    : public ::testing::TestWithParam<std::tuple<Arch, int>> {};

TEST_P(DifferentialLift, IrEffectsMatchMachineSemantics) {
  const auto& [arch, seed] = GetParam();
  Rng rng(seed * 977 + 5);
  const Op kStraightLine[] = {
      Op::kMovR, Op::kMovI, Op::kMovHi, Op::kAddR, Op::kAddI, Op::kSubR,
      Op::kSubI, Op::kMulR, Op::kAndR, Op::kAndI, Op::kOrrR, Op::kOrrI,
      Op::kXorR, Op::kXorI, Op::kLslI, Op::kLsrI, Op::kLdrW, Op::kStrW,
      Op::kLdrB, Op::kStrB, Op::kLdrWR, Op::kStrWR, Op::kLdrBR,
      Op::kStrBR, Op::kCmpR, Op::kCmpI, Op::kNop};

  for (int trial = 0; trial < 40; ++trial) {
    // Random straight-line program.
    std::vector<Insn> insns;
    int length = static_cast<int>(rng.Range(1, 24));
    for (int i = 0; i < length; ++i) {
      Insn insn = RandomInsnForOp(
          kStraightLine[rng.Below(std::size(kStraightLine))], rng);
      // Avoid clobbering pc; keep addresses away from wrap-around.
      if (insn.rd == kRegPc) insn.rd = 4;
      insns.push_back(insn);
    }
    FnBuilder b("f");
    for (const Insn& insn : insns) b.Emit(insn);
    b.Ret();
    BinaryWriter writer(arch, "t");
    writer.AddFunction(std::move(b).Finish().value());
    Binary bin = writer.Build().value();

    // Common random initial state.
    ConcreteState init;
    for (int r = 0; r < kNumRegs; ++r) {
      // Register values double as memory addresses; keep them in a
      // benign range.
      init.regs[r] = 0x20000 + static_cast<uint32_t>(rng.Below(0x1000)) * 4;
    }

    ConcreteState machine = init;
    for (const Insn& insn : insns) StepMachine(insn, machine);

    ConcreteState ir = init;
    IRBlock block = Lifter(bin).LiftBlock(kTextBase).value();
    RunIrBlock(block, ir);
    // The ret block-end also reads lr; register effects only matter.
    EXPECT_EQ(machine, ir) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialLift,
    ::testing::Combine(::testing::Values(Arch::kDtArm, Arch::kDtMips),
                       ::testing::Range(0, 8)));

// ---------- firmware pack/extract round trip ---------------------------------

class FirmwareRoundTrip
    : public ::testing::TestWithParam<std::tuple<Packing, int>> {};

TEST_P(FirmwareRoundTrip, PreservesAllFiles) {
  const auto& [packing, seed] = GetParam();
  Rng rng(seed * 131 + 3);
  FirmwareImage image;
  image.vendor = "V" + std::to_string(seed);
  image.product = "P";
  image.version = "9.9";
  image.packing = packing;
  int files = static_cast<int>(rng.Range(1, 12));
  for (int i = 0; i < files; ++i) {
    FirmwareFile f;
    f.path = "/f" + std::to_string(i);
    size_t size = rng.Below(4096);
    f.bytes.resize(size);
    for (uint8_t& byte : f.bytes) {
      byte = static_cast<uint8_t>(rng.Below(256));
    }
    image.files.push_back(std::move(f));
  }
  auto out = FirmwareExtractor::Extract(FirmwarePacker::Pack(image));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->image.files.size(), image.files.size());
  for (size_t i = 0; i < image.files.size(); ++i) {
    EXPECT_EQ(out->image.files[i].path, image.files[i].path);
    EXPECT_EQ(out->image.files[i].bytes, image.files[i].bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FirmwareRoundTrip,
    ::testing::Combine(::testing::Values(Packing::kPlain, Packing::kXor),
                       ::testing::Range(0, 6)));

// ---------- layout similarity metric properties -------------------------------

StructLayout RandomLayout(Rng& rng) {
  static const char* kBases[] = {"R", "deref(R)", "deref(R+0x8)",
                                 "deref(R+0x10)"};
  StructLayout layout;
  layout.root = SymExpr::Arg(static_cast<int>(rng.Below(4)));
  int groups = static_cast<int>(rng.Range(1, 3));
  for (int g = 0; g < groups; ++g) {
    std::vector<StructField>& fields = layout.groups[kBases[rng.Below(4)]];
    // Offsets must be unique within a group: a real structure cannot
    // hold two conflicting fields at one offset.
    std::set<int64_t> offsets;
    int n = static_cast<int>(rng.Range(1, 6));
    for (int i = 0; i < n; ++i) {
      offsets.insert(static_cast<int64_t>(rng.Below(16)) * 4);
    }
    fields.clear();
    for (int64_t off : offsets) {
      fields.push_back({off, static_cast<ValueType>(rng.Below(5))});
    }
  }
  return layout;
}

class SimilarityProperties : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityProperties, MetricAxioms) {
  Rng rng(GetParam() * 71 + 11);
  for (int i = 0; i < 50; ++i) {
    StructLayout a = RandomLayout(rng);
    StructLayout b = RandomLayout(rng);
    // Self-similarity equals the number of base groups.
    EXPECT_DOUBLE_EQ(LayoutSimilarity(a, a),
                     static_cast<double>(a.groups.size()));
    // Symmetry.
    EXPECT_DOUBLE_EQ(LayoutSimilarity(a, b), LayoutSimilarity(b, a));
    // Non-negativity and per-group boundedness.
    double sigma = LayoutSimilarity(a, b);
    EXPECT_GE(sigma, 0.0);
    EXPECT_LE(sigma,
              static_cast<double>(std::max(a.groups.size(),
                                           b.groups.size())));
    // Compatibility gate: incompatible implies zero.
    if (!LayoutsCompatible(a, b)) {
      EXPECT_DOUBLE_EQ(sigma, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimilarityProperties,
                         ::testing::Range(0, 5));

// ---------- symbolic expression normalization --------------------------------

class SymExprProperties : public ::testing::TestWithParam<int> {};

TEST_P(SymExprProperties, AddChainsNormalizeToBasePlusOffset) {
  Rng rng(GetParam() * 13 + 1);
  for (int i = 0; i < 100; ++i) {
    SymRef base = rng.Chance(0.5)
                      ? SymExpr::Arg(static_cast<int>(rng.Below(4)))
                      : SymExpr::Sp0();
    int64_t total = 0;
    SymRef expr = base;
    int steps = static_cast<int>(rng.Range(1, 8));
    for (int k = 0; k < steps; ++k) {
      int64_t delta = rng.Range(-64, 64);
      expr = SymAdd(expr, delta);
      total += delta;
    }
    auto split = SymExpr::SplitBaseOffset(expr);
    if (total == 0) {
      EXPECT_TRUE(SymExpr::Equal(expr, base));
    } else {
      ASSERT_TRUE(split.base);
      EXPECT_TRUE(SymExpr::Equal(split.base, base));
      EXPECT_EQ(split.offset, total);
    }
  }
}

TEST_P(SymExprProperties, ReplaceRemovesNeedle) {
  Rng rng(GetParam() * 17 + 2);
  for (int i = 0; i < 50; ++i) {
    SymRef needle = SymExpr::Arg(static_cast<int>(rng.Below(3)));
    SymRef expr = SymExpr::Deref(
        SymAdd(needle, static_cast<int64_t>(rng.Below(64))));
    SymRef to = SymExpr::Heap(rng.Next());
    SymRef out = SymExpr::Replace(expr, needle, to);
    EXPECT_FALSE(out->Contains(needle));
    EXPECT_TRUE(out->Contains(to));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SymExprProperties, ::testing::Range(0, 4));

// ---------- on-demand alias oracle properties --------------------------------
//
// The oracle's MayAlias must behave like an equivalence test over
// canonicalized SSEs: reflexive, symmetric, and exactly "canonical
// forms are Equal" — and its per-function memo must give the same
// answers no matter how many threads race the first query.

FunctionSummary MakeAliasSummary(Rng& rng, std::vector<SymRef>* alias_locs) {
  FunctionSummary s;
  s.name = "f";
  int facts = 1 + static_cast<int>(rng.Below(3));
  for (int i = 0; i < facts; ++i) {
    // Alias-creating store: deref(argI + off) = Sp0 + c.
    DefPair p;
    p.d = SymExpr::Deref(
        SymAdd(SymExpr::Arg(i), static_cast<int64_t>(rng.Below(8)) * 8));
    p.u = SymAdd(SymExpr::Sp0(),
                 0x40 + static_cast<int64_t>(rng.Below(8)) * 0x10);
    alias_locs->push_back(p.d);
    s.def_pairs.push_back(std::move(p));
  }
  // A store that yields no fact (tainted value, not a pointer).
  DefPair t;
  t.d = SymExpr::Deref(SymAdd(SymExpr::Sp0(), 0x170));
  t.u = SymExpr::Taint(1, "recv");
  s.def_pairs.push_back(std::move(t));
  return s;
}

SymRef RandomSse(Rng& rng, const std::vector<SymRef>& alias_locs) {
  SymRef expr;
  switch (rng.Below(3)) {
    case 0:
      expr = SymExpr::Arg(static_cast<int>(rng.Below(4)));
      break;
    case 1:
      expr = SymExpr::Sp0();
      break;
    default:
      expr = alias_locs[rng.Below(alias_locs.size())];
      break;
  }
  int derefs = static_cast<int>(rng.Below(3));
  for (int i = 0; i < derefs; ++i) {
    expr = SymExpr::Deref(
        SymAdd(expr, static_cast<int64_t>(rng.Below(16)) * 4));
  }
  return expr;
}

class AliasOracleProperties : public ::testing::TestWithParam<int> {};

TEST_P(AliasOracleProperties, MayAliasIsCanonicalSseEquality) {
  Rng rng(GetParam() * 137 + 19);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SymRef> alias_locs;
    FunctionSummary summary = MakeAliasSummary(rng, &alias_locs);
    OnDemandAliasOracle oracle;
    for (int i = 0; i < 25; ++i) {
      SymRef a = RandomSse(rng, alias_locs);
      SymRef b = RandomSse(rng, alias_locs);
      // Reflexivity.
      EXPECT_TRUE(oracle.MayAlias(summary, a, a)) << a->ToString();
      // Symmetry.
      bool ab = oracle.MayAlias(summary, a, b);
      EXPECT_EQ(oracle.MayAlias(summary, b, a), ab)
          << a->ToString() << " vs " << b->ToString();
      // Canonicalization invariance: a aliases b exactly when the
      // canonical SSEs are Equal (interned: pointer identity).
      EXPECT_EQ(ab, SymExpr::Equal(oracle.CanonicalSse(summary, a),
                                   oracle.CanonicalSse(summary, b)))
          << a->ToString() << " vs " << b->ToString();
      // Canonicalization is idempotent (a reached fixpoint).
      SymRef canon = oracle.CanonicalSse(summary, a);
      EXPECT_TRUE(
          SymExpr::Equal(oracle.CanonicalSse(summary, canon), canon))
          << a->ToString();
    }
  }
}

TEST_P(AliasOracleProperties, RewriteThroughFactAliasesItsTwinName) {
  Rng rng(GetParam() * 241 + 23);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<SymRef> alias_locs;
    FunctionSummary summary = MakeAliasSummary(rng, &alias_locs);
    OnDemandAliasOracle oracle;
    const std::vector<AliasFact>& facts = oracle.FactsFor(summary);
    ASSERT_EQ(facts.size(), alias_locs.size());
    for (const AliasFact& fact : facts) {
      // *(alias_loc)+k and *(base+offset)+k name the same cell.
      int64_t k = static_cast<int64_t>(rng.Below(16)) * 4;
      SymRef via_alias = SymExpr::Deref(SymAdd(fact.alias_loc, k));
      SymRef via_base =
          SymExpr::Deref(SymAdd(SymAdd(fact.base, fact.offset), k));
      EXPECT_TRUE(oracle.MayAlias(summary, via_alias, via_base))
          << via_alias->ToString() << " vs " << via_base->ToString();
    }
  }
}

TEST_P(AliasOracleProperties, MemoIsDeterministicAcrossThreadCounts) {
  // Build linked summaries from a real synthesized program, then race
  // the oracle's first queries from many threads: the memoized twins
  // must match a single-threaded oracle's, function for function.
  ProgramSpec spec;
  spec.name = "memo";
  spec.arch = GetParam() % 2 ? Arch::kDtMips : Arch::kDtArm;
  spec.seed = 900 + static_cast<uint64_t>(GetParam());
  spec.filler_functions = 10;
  PlantSpec p;
  p.id = "v";
  p.pattern = VulnPattern::kCrossCallAlias;
  p.source = "recv";
  p.sink = "memcpy";
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  CfgBuilder builder(out->binary);
  auto program = builder.BuildProgram();
  ASSERT_TRUE(program.ok());
  SymEngine engine(out->binary);
  CallGraph graph = CallGraph::Build(*program);
  InterprocConfig config;
  config.alias_mode = AliasMode::kOnDemandSSE;
  ProgramAnalysis analysis = RunBottomUp(*program, graph, engine, config);
  ASSERT_TRUE(analysis.alias_oracle);

  std::vector<const FunctionSummary*> summaries;
  for (const auto& [_, summary] : analysis.summaries) {
    summaries.push_back(&summary);
  }
  auto twin_strings = [](const std::vector<DefPair>& twins) {
    std::vector<std::string> out;
    for (const DefPair& dp : twins) {
      out.push_back(dp.d->ToString() + " = " + dp.u->ToString());
    }
    return out;
  };
  OnDemandAliasOracle reference;
  std::map<std::string, std::vector<std::string>> expected;
  for (const FunctionSummary* s : summaries) {
    expected[s->name] = twin_strings(reference.TwinsFor(*s));
  }

  for (int threads : {2, 8}) {
    OnDemandAliasOracle racing;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        Rng order(static_cast<uint64_t>(t) * 71 + 5);
        for (size_t i = 0; i < summaries.size(); ++i) {
          racing.TwinsFor(*summaries[order.Below(summaries.size())]);
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (const FunctionSummary* s : summaries) {
      EXPECT_EQ(twin_strings(racing.TwinsFor(*s)), expected[s->name])
          << s->name << " at " << threads << " threads";
    }
    EXPECT_EQ(racing.memo_pairs(), reference.memo_pairs());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AliasOracleProperties,
                         ::testing::Range(0, 4));

// ---------- synthesized programs are well-formed ------------------------------

class SynthWellFormed
    : public ::testing::TestWithParam<std::tuple<Arch, int>> {};

TEST_P(SynthWellFormed, RoundTripsAndBuildsCfg) {
  const auto& [arch, seed] = GetParam();
  ProgramSpec spec;
  spec.name = "p";
  spec.arch = arch;
  spec.seed = seed;
  spec.filler_functions = 25;
  PlantSpec p;
  p.id = "v";
  p.pattern = static_cast<VulnPattern>(seed % 5);
  p.source = (p.pattern == VulnPattern::kDispatch ||
              p.pattern == VulnPattern::kLoopCopy ||
              p.pattern == VulnPattern::kAliasChain)
                 ? "recv"
                 : "getenv";
  p.sink = p.pattern == VulnPattern::kLoopCopy
               ? "loop"
               : (p.pattern == VulnPattern::kDispatch ? "memcpy"
                                                      : "system");
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // Serialize -> load -> CFG: all stages must accept the program.
  std::vector<uint8_t> bytes = BinaryWriter::Serialize(out->binary);
  auto loaded = BinaryLoader::Load(bytes);
  ASSERT_TRUE(loaded.ok());
  CfgBuilder builder(*loaded);
  auto program = builder.BuildProgram();
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  // Loop invariants: every back edge's endpoints are inside the loop.
  for (const auto& [name, fn] : program->functions) {
    LoopInfo loops = FindLoops(fn);
    for (const auto& [tail, header] : loops.back_edges) {
      ASSERT_TRUE(loops.loops.count(header));
      EXPECT_TRUE(loops.loops.at(header).count(tail));
      EXPECT_TRUE(loops.loops.at(header).count(header));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SynthWellFormed,
    ::testing::Combine(::testing::Values(Arch::kDtArm, Arch::kDtMips),
                       ::testing::Range(0, 10)));

}  // namespace
}  // namespace dtaint

// ---------- robustness: mutated inputs never crash the parsers ---------------
//
// Loader and extractor face hostile bytes in real deployments (that is
// the whole point of the tool); any mutation of a valid image must
// produce a clean Status, never UB. (Appended separately to keep the
// main suite readable.)

namespace dtaint {
namespace {

class MutationRobustness : public ::testing::TestWithParam<int> {};

TEST_P(MutationRobustness, LoaderSurvivesBitFlipsAndTruncation) {
  Rng rng(GetParam() * 313 + 17);
  BinaryWriter writer(Arch::kDtArm, "fuzzed");
  writer.AddImport("recv");
  FnBuilder b("f");
  b.MovI(0, 1);
  b.Call("recv");
  b.Ret();
  writer.AddFunction(std::move(b).Finish().value());
  writer.AddRodata({1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<uint8_t> pristine =
      BinaryWriter::Serialize(writer.Build().value());

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> bytes = pristine;
    int mutations = static_cast<int>(rng.Range(1, 8));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.Below(3)) {
        case 0:  // bit flip
          bytes[rng.Below(bytes.size())] ^=
              static_cast<uint8_t>(1u << rng.Below(8));
          break;
        case 1:  // byte splice
          bytes[rng.Below(bytes.size())] =
              static_cast<uint8_t>(rng.Below(256));
          break;
        default:  // truncate
          bytes.resize(1 + rng.Below(bytes.size()));
          break;
      }
    }
    auto result = BinaryLoader::Load(bytes);  // must not crash
    if (result.ok()) {
      // If it still parses (mutation in dead space would break the
      // checksum, so this should be rare-to-impossible), the result
      // must be structurally sane.
      EXPECT_NE(result->FindSection(".text"), nullptr);
    }
  }
}

TEST_P(MutationRobustness, ExtractorSurvivesBitFlipsAndTruncation) {
  Rng rng(GetParam() * 733 + 29);
  FirmwareImage image;
  image.vendor = "F";
  image.product = "Z";
  image.files.push_back({"/bin/a", std::vector<uint8_t>(128, 0xAB)});
  image.files.push_back({"/etc/b", std::vector<uint8_t>(64, 0xCD)});
  std::vector<uint8_t> pristine = FirmwarePacker::Pack(image);

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> bytes = pristine;
    int mutations = static_cast<int>(rng.Range(1, 8));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.Below(3)) {
        case 0:
          bytes[rng.Below(bytes.size())] ^=
              static_cast<uint8_t>(1u << rng.Below(8));
          break;
        case 1:
          bytes[rng.Below(bytes.size())] =
              static_cast<uint8_t>(rng.Below(256));
          break;
        default:
          bytes.resize(1 + rng.Below(bytes.size()));
          break;
      }
    }
    auto result = FirmwareExtractor::Extract(bytes);  // must not crash
    (void)result;
  }
}

TEST_P(MutationRobustness, RandomBytesNeverParse) {
  Rng rng(GetParam() * 53 + 41);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> junk(rng.Below(2048));
    for (uint8_t& b : junk) b = static_cast<uint8_t>(rng.Below(256));
    EXPECT_FALSE(BinaryLoader::Load(junk).ok());
    // The extractor may spuriously find the 4-byte magic in noise but
    // must then fail cleanly on the garbage that follows.
    auto result = FirmwareExtractor::Extract(junk);
    EXPECT_FALSE(result.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MutationRobustness, ::testing::Range(0, 4));

}  // namespace
}  // namespace dtaint
