// Unit tests for the persistent function-summary cache: the versioned
// binary codec (round trip, corruption rejection, version skew), the
// two cache tiers (LRU memory + on-disk store), and the fingerprint
// properties the content-addressed keys must satisfy (stability across
// independent builds and process runs; sensitivity to any single
// instruction mutation and to every analysis-relevant config knob).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "src/binary/writer.h"
#include "src/cache/summary_cache.h"
#include "src/cache/summary_codec.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/dtaint.h"
#include "src/isa/asm_builder.h"
#include "src/symexec/engine.h"
#include "src/synth/firmware_synth.h"
#include "src/util/rng.h"
#include "tests/testing/random_insn.h"

namespace dtaint {
namespace {

using testing_util::RandomInsnForOp;
namespace fs = std::filesystem;

// ---------- shared helpers ---------------------------------------------------

/// A handmade summary exercising every encodable field.
FunctionSummary TinySummary(const std::string& name, uint32_t salt = 0) {
  FunctionSummary s;
  s.name = name;
  s.addr = 0x10000 + salt;
  DefPair dp;
  dp.d = SymExpr::Deref(SymAdd(SymExpr::Arg(0), 8), 4);
  dp.u = SymExpr::Taint(0x10010 + salt, "recv");
  dp.site = 0x10010 + salt;
  dp.path_id = 1;
  PathConstraint c;
  c.op = BinOp::kCmpLt;
  c.lhs = SymExpr::Arg(1);
  c.rhs = SymExpr::Const(64);
  c.taken = true;
  c.site = 0x10008;
  dp.constraints.push_back(c);
  s.def_pairs.push_back(dp);

  UseRecord use;
  use.u = SymExpr::Deref(SymExpr::Arg(2), 1);
  use.site = 0x10020;
  use.path_id = 2;
  s.undefined_uses.push_back(use);

  CallEvent call;
  call.callsite = 0x10030;
  call.callee = "memcpy";
  call.is_import = true;
  call.args = {SymExpr::Arg(0), SymExpr::Taint(0x10010, "recv"), nullptr};
  call.path_id = 1;
  s.calls.push_back(call);

  s.return_values.push_back(SymExpr::Heap(0xDEADBEEF + salt));
  s.return_values.push_back(nullptr);
  s.types.Observe(SymExpr::Arg(0), ValueType::kPtr);
  s.paths_explored = 3;
  s.blocks_visited = 17;
  s.truncated = false;
  s.alias_pairs = 2 + salt;
  return s;
}

/// Summaries produced by the real engine over a synthesized binary —
/// the representative workload for round-trip testing.
std::vector<FunctionSummary> EngineSummaries(uint64_t seed, Arch arch) {
  ProgramSpec spec;
  spec.name = "codec";
  spec.arch = arch;
  spec.seed = seed;
  spec.filler_functions = 12;
  PlantSpec p;
  p.id = "v";
  p.pattern = VulnPattern::kAliasChain;
  p.source = "recv";
  p.sink = "strcpy";
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  EXPECT_TRUE(out.ok());
  CfgBuilder builder(out->binary);
  auto program = builder.BuildProgram();
  EXPECT_TRUE(program.ok());
  SymEngine engine(out->binary);
  std::vector<FunctionSummary> summaries;
  for (const auto& [name, fn] : program->functions) {
    summaries.push_back(engine.Analyze(fn));
  }
  return summaries;
}

// ---------- codec: round trip ------------------------------------------------

TEST(SummaryCodec, HandmadeSummaryRoundTripsByteIdentical) {
  FunctionSummary original = TinySummary("f");
  std::vector<uint8_t> blob = EncodeSummary(original);
  auto decoded = DecodeSummary(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->name, original.name);
  EXPECT_EQ(decoded->addr, original.addr);
  EXPECT_EQ(decoded->def_pairs.size(), original.def_pairs.size());
  EXPECT_EQ(decoded->calls.size(), original.calls.size());
  // The strong identity check: re-encoding the decode reproduces the
  // exact bytes, so no field is lost or renormalized differently.
  EXPECT_EQ(EncodeSummary(*decoded), blob);
}

TEST(SummaryCodec, EngineSummariesRoundTripByteIdentical) {
  for (Arch arch : {Arch::kDtArm, Arch::kDtMips}) {
    for (const FunctionSummary& summary : EngineSummaries(7, arch)) {
      std::vector<uint8_t> blob = EncodeSummary(summary);
      auto decoded = DecodeSummary(blob);
      ASSERT_TRUE(decoded.ok())
          << summary.name << ": " << decoded.status().ToString();
      EXPECT_EQ(EncodeSummary(*decoded), blob) << summary.name;
    }
  }
}

TEST(SummaryCodec, DebugJsonMentionsEveryDefPair) {
  FunctionSummary s = TinySummary("dbg");
  std::string json = SummaryToDebugJson(s);
  EXPECT_NE(json.find("\"function\":\"dbg\""), std::string::npos);
  EXPECT_NE(json.find("recv"), std::string::npos);
  EXPECT_NE(json.find("memcpy"), std::string::npos);
}

// ---------- codec: rejection of damaged blobs --------------------------------

TEST(SummaryCodec, EveryTruncationIsRejected) {
  std::vector<uint8_t> blob = EncodeSummary(TinySummary("t"));
  for (size_t len = 0; len < blob.size(); ++len) {
    auto r = DecodeSummary(std::span<const uint8_t>(blob.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(SummaryCodec, FuzzMutationsNeverParseAndNeverCrash) {
  std::vector<uint8_t> pristine = EncodeSummary(TinySummary("fz"));
  Rng rng(20260805);
  int rejected = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<uint8_t> bytes = pristine;
    switch (rng.Below(3)) {
      case 0:  // bit flip
        bytes[rng.Below(bytes.size())] ^=
            static_cast<uint8_t>(1u << rng.Below(8));
        break;
      case 1:  // byte splice
        bytes[rng.Below(bytes.size())] =
            static_cast<uint8_t>(rng.Below(256));
        break;
      default:  // truncate
        bytes.resize(rng.Below(bytes.size()));
        break;
    }
    if (bytes == pristine) continue;  // splice may be a no-op
    auto r = DecodeSummary(bytes);  // must not crash
    EXPECT_FALSE(r.ok());
    if (!r.ok()) ++rejected;
  }
  // Overwhelmingly most trials are real mutations; make sure the loop
  // did not silently skip everything.
  EXPECT_GT(rejected, 900);
}

TEST(SummaryCodec, FutureCodecVersionIsUnsupportedNotCorrupt) {
  std::vector<uint8_t> blob = EncodeSummary(TinySummary("vv"));
  // Patch the version field (bytes [4..5], little-endian, right after
  // the u32 magic) and re-seal the trailing checksum so the blob is
  // otherwise valid — this is what a file written by a *newer* build
  // looks like to this one.
  uint16_t future = kSummaryCodecVersion + 1;
  blob[4] = static_cast<uint8_t>(future);
  blob[5] = static_cast<uint8_t>(future >> 8);
  uint64_t checksum = Fnv1a(
      std::span<const uint8_t>(blob.data(), blob.size() - 8));
  for (int i = 0; i < 8; ++i) {
    blob[blob.size() - 8 + i] = static_cast<uint8_t>(checksum >> (8 * i));
  }
  auto r = DecodeSummary(blob);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(SummaryCodec, ChecksumFailureIsCorruptData) {
  std::vector<uint8_t> blob = EncodeSummary(TinySummary("ck"));
  blob[10] ^= 0x40;
  auto r = DecodeSummary(blob);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
}

// ---------- cache tiers ------------------------------------------------------

TEST(SummaryCacheTier, MemoryLruEvictsBeyondEntryCap) {
  CacheConfig config;
  config.max_memory_entries = 2;
  SummaryCache cache(config);
  Hash128 k1{1, 1}, k2{1, 2}, k3{1, 3};
  cache.Store(k1, TinySummary("a", 1));
  cache.Store(k2, TinySummary("b", 2));
  cache.Store(k3, TinySummary("c", 3));

  CacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.memory_entries, 2u);
  // Oldest entry gone (no disk tier to fall back to), newest present.
  EXPECT_FALSE(cache.Lookup(k1).has_value());
  ASSERT_TRUE(cache.Lookup(k3).has_value());
  EXPECT_EQ(cache.Lookup(k3)->name, "c");
}

TEST(SummaryCacheTier, LookupRefreshesLruRecency) {
  CacheConfig config;
  config.max_memory_entries = 2;
  SummaryCache cache(config);
  Hash128 k1{2, 1}, k2{2, 2}, k3{2, 3};
  cache.Store(k1, TinySummary("a", 1));
  cache.Store(k2, TinySummary("b", 2));
  ASSERT_TRUE(cache.Lookup(k1).has_value());  // k1 now most-recent
  cache.Store(k3, TinySummary("c", 3));       // should evict k2, not k1
  EXPECT_TRUE(cache.Lookup(k1).has_value());
  EXPECT_FALSE(cache.Lookup(k2).has_value());
}

TEST(SummaryCacheTier, ByteBudgetBoundsMemoryFootprint) {
  CacheConfig config;
  config.max_memory_bytes = 256;  // far below a few summaries' size
  SummaryCache cache(config);
  for (uint32_t i = 0; i < 8; ++i) {
    cache.Store(Hash128{3, i}, TinySummary("s" + std::to_string(i), i));
  }
  CacheStats stats = cache.stats();
  // The newest entry is always kept even if alone over-budget; beyond
  // that the byte cap holds.
  EXPECT_LE(stats.memory_entries, 2u);
  EXPECT_GE(stats.evictions, 6u);
}

TEST(SummaryCacheTier, DiskTierPersistsAcrossInstances) {
  fs::path dir = "cache_test_disk";
  fs::remove_all(dir);
  Hash128 key{4, 42};
  {
    CacheConfig config;
    config.disk_dir = dir.string();
    SummaryCache writer(config);
    writer.Store(key, TinySummary("persisted"));
    EXPECT_EQ(writer.stats().stores, 1u);
  }
  ASSERT_TRUE(fs::exists(dir / (key.ToHex() + ".dtsc")));
  {
    CacheConfig config;
    config.disk_dir = dir.string();
    SummaryCache reader(config);  // cold memory tier
    auto hit = reader.Lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->name, "persisted");
    CacheStats stats = reader.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.disk_hits, 1u);
    // Promoted blob now serves from memory.
    EXPECT_TRUE(reader.Lookup(key).has_value());
    EXPECT_EQ(reader.stats().disk_hits, 1u);
  }
  fs::remove_all(dir);
}

TEST(SummaryCacheTier, WriteDebugJsonDumpsSidecar) {
  fs::path dir = "cache_test_json";
  fs::remove_all(dir);
  CacheConfig config;
  config.disk_dir = dir.string();
  config.write_debug_json = true;
  SummaryCache cache(config);
  Hash128 key{5, 5};
  cache.Store(key, TinySummary("dumped"));
  EXPECT_TRUE(fs::exists(dir / (key.ToHex() + ".json")));
  fs::remove_all(dir);
}

TEST(SummaryCacheTier, CorruptDiskEntryIsMissThenRepaired) {
  fs::path dir = "cache_test_corrupt";
  fs::remove_all(dir);
  CacheConfig config;
  config.disk_dir = dir.string();
  Hash128 key{6, 6};
  {
    SummaryCache writer(config);
    writer.Store(key, TinySummary("victim"));
  }
  // Flip a byte in the middle of the stored blob.
  fs::path file = dir / (key.ToHex() + ".dtsc");
  {
    std::vector<uint8_t> bytes;
    {
      std::ifstream in(file, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] ^= 0xFF;
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  SummaryCache reader(config);
  EXPECT_FALSE(reader.Lookup(key).has_value());  // never crashes
  CacheStats stats = reader.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.corrupt_entries, 1u);
  // The caller recomputes and stores; the bad file is overwritten and
  // the entry serves again.
  reader.Store(key, TinySummary("victim"));
  SummaryCache reader2(config);
  EXPECT_TRUE(reader2.Lookup(key).has_value());
  fs::remove_all(dir);
}

// ---------- fingerprint properties -------------------------------------------

/// Builds a one-function binary from an instruction list.
Binary BuildFromInsns(const std::vector<Insn>& insns, Arch arch) {
  FnBuilder b("f");
  for (const Insn& insn : insns) b.Emit(insn);
  b.Ret();
  BinaryWriter writer(arch, "t");
  writer.AddFunction(std::move(b).Finish().value());
  return writer.Build().value();
}

Hash128 KeyOfFn(const Binary& bin, const std::string& name,
                EngineConfig engine = {}, bool apply_alias = true) {
  CfgBuilder builder(bin);
  auto program = builder.BuildProgram();
  EXPECT_TRUE(program.ok());
  Hash128 fp = EngineFingerprint(bin, engine, apply_alias);
  const Function* fn = program->FindFunction(name);
  EXPECT_NE(fn, nullptr);
  return FunctionKey(*fn, fp);
}

TEST(Fingerprint, StableAcrossIndependentBuildsOfTheSameProgram) {
  ProgramSpec spec;
  spec.name = "stable";
  spec.seed = 11;
  spec.filler_functions = 10;
  auto first = SynthesizeBinary(spec);
  auto second = SynthesizeBinary(spec);
  ASSERT_TRUE(first.ok() && second.ok());
  CfgBuilder b1(first->binary), b2(second->binary);
  auto p1 = b1.BuildProgram();
  auto p2 = b2.BuildProgram();
  ASSERT_TRUE(p1.ok() && p2.ok());
  Hash128 fp1 = EngineFingerprint(first->binary, {}, true);
  Hash128 fp2 = EngineFingerprint(second->binary, {}, true);
  EXPECT_EQ(fp1, fp2);
  ASSERT_EQ(p1->functions.size(), p2->functions.size());
  for (const auto& [name, fn] : p1->functions) {
    const Function* twin = p2->FindFunction(name);
    ASSERT_NE(twin, nullptr) << name;
    EXPECT_EQ(FunctionKey(fn, fp1), FunctionKey(*twin, fp2)) << name;
  }
}

TEST(Fingerprint, GoldenKeyPinsCrossProcessStability) {
  // The key of this fixed function must never depend on process state
  // (pointers, ASLR, iteration order). The constant below was produced
  // by this same code; if it drifts without an intentional key-schema
  // change, cache keys are unstable across runs and the disk tier is
  // silently useless.
  FnBuilder b("golden");
  b.MovI(0, 7);
  b.AddI(1, 0, 35);
  b.StrW(1, 13, 8);
  b.Ret();
  BinaryWriter writer(Arch::kDtArm, "gold");
  writer.AddFunction(std::move(b).Finish().value());
  Binary bin = writer.Build().value();
  Hash128 key = KeyOfFn(bin, "golden");
  EXPECT_EQ(key.ToHex(), "c0973aefe3f72d47d3d028894c4b7c14");
}

TEST(Fingerprint, AnySingleInstructionMutationChangesTheKey) {
  // Straight-line opcode pool: every field RandomInsnForOp fills is
  // semantically live (no cmp — its rd is ignored by the lifter).
  const Op kPool[] = {
      Op::kMovR, Op::kMovI, Op::kMovHi, Op::kAddR, Op::kAddI, Op::kSubR,
      Op::kSubI, Op::kMulR, Op::kAndR, Op::kAndI, Op::kOrrR, Op::kOrrI,
      Op::kXorR, Op::kXorI, Op::kLslI, Op::kLsrI, Op::kLdrW, Op::kStrW,
      Op::kLdrB, Op::kStrB, Op::kLdrWR, Op::kStrWR, Op::kLdrBR,
      Op::kStrBR};
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Insn> insns;
    int length = static_cast<int>(rng.Range(2, 16));
    for (int i = 0; i < length; ++i) {
      Insn insn = RandomInsnForOp(kPool[rng.Below(std::size(kPool))], rng);
      if (insn.rd == kRegPc) insn.rd = 4;
      insns.push_back(insn);
    }
    Arch arch = rng.Chance(0.5) ? Arch::kDtArm : Arch::kDtMips;
    Hash128 base = KeyOfFn(BuildFromInsns(insns, arch), "f");

    // Minimal semantic mutation of one random instruction.
    size_t victim = rng.Below(insns.size());
    std::vector<Insn> mutated = insns;
    Insn& m = mutated[victim];
    switch (FormatOf(m.op)) {
      case OpFormat::kI:
        m.imm += (m.op == Op::kMovHi ? (m.imm == 0xFFFF ? -1 : 1)
                                     : (m.imm == 32767 ? -1 : 1));
        break;
      case OpFormat::kR:
        m.rd = static_cast<uint8_t>((m.rd + 1) % 13);
        break;
      default:
        m = RandomInsnForOp(Op::kMovI, rng);
        m.rd = 4;
        break;
    }
    Hash128 changed = KeyOfFn(BuildFromInsns(mutated, arch), "f");
    EXPECT_NE(base, changed) << "trial " << trial << " victim " << victim;
  }
}

TEST(Fingerprint, EveryAnalysisConfigKnobChangesTheKey) {
  Rng rng(1);
  Binary bin =
      BuildFromInsns({RandomInsnForOp(Op::kNop, rng)}, Arch::kDtArm);
  Hash128 base = KeyOfFn(bin, "f");

  EngineConfig fewer_paths;
  fewer_paths.max_paths = 7;
  EXPECT_NE(base, KeyOfFn(bin, "f", fewer_paths));

  EngineConfig fewer_visits;
  fewer_visits.max_block_visits = 99;
  EXPECT_NE(base, KeyOfFn(bin, "f", fewer_visits));

  EngineConfig shallow;
  shallow.max_expr_depth = 5;
  EXPECT_NE(base, KeyOfFn(bin, "f", shallow));

  EngineConfig untyped;
  untyped.record_types = false;
  EXPECT_NE(base, KeyOfFn(bin, "f", untyped));

  EXPECT_NE(base, KeyOfFn(bin, "f", {}, /*apply_alias=*/false));
}

TEST(Fingerprint, AliasModeKeysAreMutuallyDistinct) {
  // 0 = alias off, 1 = eager, 2 = on-demand SSE: eager summaries carry
  // the twin rewrite, on-demand ones don't, so the three key spaces
  // must never collide. The bool overload keeps old callers mapping
  // onto 0/1 exactly.
  Rng rng(2);
  Binary bin =
      BuildFromInsns({RandomInsnForOp(Op::kNop, rng)}, Arch::kDtArm);
  Hash128 off = EngineFingerprint(bin, {}, 0);
  Hash128 eager = EngineFingerprint(bin, {}, 1);
  Hash128 ondemand = EngineFingerprint(bin, {}, 2);
  EXPECT_NE(off, eager);
  EXPECT_NE(off, ondemand);
  EXPECT_NE(eager, ondemand);
  EXPECT_EQ(EngineFingerprint(bin, {}, false), off);
  EXPECT_EQ(EngineFingerprint(bin, {}, true), eager);
}

TEST(Fingerprint, DataSectionBytesAreInTheKey) {
  // The engine concretizes loads from constant addresses out of
  // .rodata/.data, so two binaries with identical code but different
  // data must not share summaries.
  auto build = [](uint8_t byte) {
    FnBuilder b("f");
    b.MovI(0, 1);
    b.Ret();
    BinaryWriter writer(Arch::kDtArm, "t");
    writer.AddFunction(std::move(b).Finish().value());
    writer.AddRodata({byte, 2, 3, 4});
    return writer.Build().value();
  };
  EXPECT_NE(KeyOfFn(build(1), "f"), KeyOfFn(build(9), "f"));
}

TEST(Fingerprint, Hash128HexIsCanonical) {
  Hash128 h{0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL};
  EXPECT_EQ(h.ToHex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(Hash128{}.ToHex(), "00000000000000000000000000000000");
}

// ---------- degraded summaries stay out of the cache -------------------------

TEST(SummaryCacheTier, DegradedSummariesAreNotCachedAndRerunRecovers) {
  // A starved-budget run degrades some functions; those summaries must
  // not be persisted, or a later generous run would serve stale
  // conservative garbage from the warm cache. The proof: warm rerun
  // with the budget lifted re-analyzes exactly the degraded functions
  // (cache misses for them), ends complete, and the store count grows
  // by the functions that were withheld the first time.
  ProgramSpec spec;
  spec.name = "degrade";
  spec.seed = 31;
  spec.filler_functions = 20;
  PlantSpec p;
  p.id = "v";
  p.pattern = VulnPattern::kDirect;
  p.source = "getenv";
  p.sink = "system";
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok());

  fs::path dir = "cache_test_degraded";
  fs::remove_all(dir);
  CacheConfig cache_config;
  cache_config.disk_dir = dir.string();
  SummaryCache cache(cache_config);

  DTaintConfig starved;
  starved.interproc.cache = &cache;
  starved.interproc.budget.max_steps = 150;
  auto cold = DTaint(starved).Analyze(out->binary);
  ASSERT_TRUE(cold.ok());
  ASSERT_GT(cold->degraded_functions, 0u);
  size_t stores_after_cold = cache.stats().stores;
  // Nothing degraded was stored; the two pipeline passes store each
  // full-effort function at most twice (first pass + relink pass).
  EXPECT_LT(stores_after_cold,
            2 * cold->interproc_stats.functions_processed);

  DTaintConfig generous;
  generous.interproc.cache = &cache;
  auto warm = DTaint(generous).Analyze(out->binary);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->degraded_functions, 0u);
  EXPECT_TRUE(warm->complete);
  // The previously degraded functions were recomputed and stored now.
  EXPECT_GT(cache.stats().stores, stores_after_cold);
  // And the warm result equals an uncached reference run.
  auto reference = DTaint().Analyze(out->binary);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(warm->vulnerable_paths, reference->vulnerable_paths);
  EXPECT_EQ(warm->findings.size(), reference->findings.size());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dtaint
