// Differential oracle for the symbolic-state representations.
//
// The copy-on-write state (shared register-chunk/hash-trie spine with
// a per-path overlay, plus block-transfer memoization in the engine)
// is only admissible if it is *invisible*: for any input, the full
// analysis report — findings, def-pair propagation counts, path
// counts, everything except wall-clock timings and per-run metrics —
// must be byte-identical whether exploration ran on the CoW state (the
// default) or the legacy eagerly-copied containers, at any thread
// count, cold or warm cache, in either alias mode.
//
// A second tier of property tests drives both representations through
// the raw SymState API with randomized store/load/fork interleavings
// and asserts every observable (register values, memory loads, fork
// isolation, constraint trails, taint mask) agrees pointwise — the
// overlay/spine machinery must be semantics-free.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cache/summary_cache.h"
#include "src/cache/summary_codec.h"
#include "src/cfg/callgraph.h"
#include "src/cfg/cfg_builder.h"
#include "src/core/dtaint.h"
#include "src/report/json.h"
#include "src/symexec/symstate.h"
#include "src/synth/firmware_synth.h"
#include "src/util/rng.h"

namespace dtaint {
namespace {

/// 20 synthesized binaries (10 seeds x 2 architectures) rotating
/// through the five standard plant patterns, with a sanitized twin on
/// odd seeds so reports contain both findings and their absence.
std::vector<Binary> BuildCorpus() {
  std::vector<Binary> corpus;
  for (int seed = 0; seed < 10; ++seed) {
    for (Arch arch : {Arch::kDtArm, Arch::kDtMips}) {
      ProgramSpec spec;
      spec.name = "sfw" + std::to_string(seed);
      spec.arch = arch;
      spec.seed = 900 + static_cast<uint64_t>(seed);
      spec.filler_functions = 12 + seed;
      PlantSpec p;
      p.id = "v" + std::to_string(seed);
      p.pattern = static_cast<VulnPattern>(seed % 5);
      p.source = (p.pattern == VulnPattern::kDispatch ||
                  p.pattern == VulnPattern::kLoopCopy ||
                  p.pattern == VulnPattern::kAliasChain)
                     ? "recv"
                     : "getenv";
      p.sink = p.pattern == VulnPattern::kLoopCopy
                   ? "loop"
                   : (p.pattern == VulnPattern::kDispatch ? "memcpy"
                                                          : "system");
      spec.plants.push_back(p);
      if (seed % 2) {
        PlantSpec safe = p;
        safe.id = "s" + std::to_string(seed);
        safe.sanitized = true;
        spec.plants.push_back(safe);
      }
      auto out = SynthesizeBinary(spec);
      EXPECT_TRUE(out.ok()) << out.status().ToString();
      if (out.ok()) corpus.push_back(std::move(out->binary));
    }
  }
  return corpus;
}

/// Serializes a report with the run-dependent fields (timings, cache
/// counters, per-run metrics, the timing-ordered hot-function profile)
/// zeroed; everything else must survive byte comparison.
std::string NormalizedJson(AnalysisReport report) {
  report.ssa_seconds = 0.0;
  report.ddg_seconds = 0.0;
  report.total_seconds = 0.0;
  report.interproc_stats.summary_seconds = 0.0;
  report.interproc_stats.cache_hits = 0;
  report.interproc_stats.cache_misses = 0;
  report.interproc_stats.cache_evictions = 0;
  report.interproc_stats.cache_memory_bytes = 0;
  report.interproc_stats.hot_functions.clear();
  report.hot_functions.clear();
  report.metrics = obs::MetricsSnapshot{};
  return ReportToJson(report);
}

std::string AnalyzeNormalized(const Binary& binary, bool cow,
                              int num_threads = 1,
                              SummaryCache* cache = nullptr,
                              AliasMode alias_mode = AliasMode::kEager) {
  ScopedStateCow toggle(cow);
  DTaintConfig config;
  config.interproc.num_threads = num_threads;
  config.interproc.cache = cache;
  config.interproc.alias_mode = alias_mode;
  auto report = DTaint(config).Analyze(binary);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? NormalizedJson(*report) : std::string();
}

// ---------- the oracle -------------------------------------------------------

TEST(StateDifferential, CowAndLegacyReportsAreByteIdentical) {
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 20u);
  for (size_t i = 0; i < corpus.size(); ++i) {
    std::string legacy = AnalyzeNormalized(corpus[i], /*cow=*/false);
    ASSERT_FALSE(legacy.empty());
    EXPECT_EQ(AnalyzeNormalized(corpus[i], /*cow=*/true), legacy)
        << "CoW run diverged on corpus[" << i << "]";
  }
}

TEST(StateDifferential, ByteIdenticalAtEveryThreadCount) {
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 8u);
  for (size_t i = 0; i < 4; ++i) {
    const Binary& binary = corpus[i * 2];
    std::string reference =
        AnalyzeNormalized(binary, /*cow=*/false, /*num_threads=*/1);
    ASSERT_FALSE(reference.empty());
    for (int threads : {1, 2, 8}) {
      EXPECT_EQ(AnalyzeNormalized(binary, /*cow=*/true, threads), reference)
          << "corpus[" << i * 2 << "] at num_threads=" << threads;
    }
  }
}

TEST(StateDifferential, ByteIdenticalColdAndWarmCache) {
  // Block memoization and the CoW spine must not leak into codec
  // bytes: a cache warmed by a CoW run must serve a legacy run (and
  // vice versa) without changing a single report byte.
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    const Binary& binary = corpus[i];
    std::string reference = AnalyzeNormalized(binary, /*cow=*/false);
    ASSERT_FALSE(reference.empty());
    SummaryCache cache;  // in-memory
    // Cold CoW run fills the cache; the warm runs — one per
    // representation — must replay it to the same bytes.
    EXPECT_EQ(AnalyzeNormalized(binary, /*cow=*/true, 1, &cache), reference)
        << "cold cow run, corpus[" << i << "]";
    EXPECT_EQ(AnalyzeNormalized(binary, /*cow=*/true, 1, &cache), reference)
        << "warm cow run, corpus[" << i << "]";
    EXPECT_EQ(AnalyzeNormalized(binary, /*cow=*/false, 1, &cache), reference)
        << "warm legacy run against a cow-warmed cache, corpus[" << i << "]";
  }
}

TEST(StateDifferential, ByteIdenticalInBothAliasModes) {
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_GE(corpus.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    const Binary& binary = corpus[i];
    for (AliasMode mode : {AliasMode::kEager, AliasMode::kOnDemandSSE}) {
      std::string legacy =
          AnalyzeNormalized(binary, /*cow=*/false, 1, nullptr, mode);
      ASSERT_FALSE(legacy.empty());
      EXPECT_EQ(AnalyzeNormalized(binary, /*cow=*/true, 1, nullptr, mode),
                legacy)
          << "corpus[" << i << "] alias mode "
          << (mode == AliasMode::kEager ? "eager" : "on-demand");
    }
  }
}

TEST(StateDifferential, SummaryCodecBytesAreUnchanged) {
  // The persistent cache stores EncodeSummary(...) blobs keyed by a
  // content-addressed fingerprint; the state representation (and the
  // engine_stats counters it maintains, which the codec deliberately
  // skips) must not perturb the encoded bytes.
  std::vector<Binary> corpus = BuildCorpus();
  ASSERT_FALSE(corpus.empty());
  const Binary& binary = corpus[0];
  CfgBuilder builder(binary);
  auto program = builder.BuildProgram();
  ASSERT_TRUE(program.ok());
  SymEngine engine(binary);
  CallGraph graph = CallGraph::Build(*program);

  ProgramAnalysis legacy, cow;
  {
    ScopedStateCow off(false);
    legacy = RunBottomUp(*program, graph, engine);
  }
  {
    ScopedStateCow on(true);
    cow = RunBottomUp(*program, graph, engine);
  }
  ASSERT_EQ(legacy.summaries.size(), cow.summaries.size());
  for (const auto& [name, summary] : legacy.summaries) {
    auto it = cow.summaries.find(name);
    ASSERT_NE(it, cow.summaries.end()) << name;
    EXPECT_EQ(EncodeSummary(it->second), EncodeSummary(summary))
        << name << ": codec bytes changed under the CoW state";
  }
}

// ---------- property tests: raw-state equivalence ---------------------------

/// A pool of address expressions the random walk stores to / loads
/// from: argument roots, field offsets, sp-relative slots, a heap
/// symbol — the shapes exploration actually produces.
std::vector<SymRef> AddressPool() {
  std::vector<SymRef> pool;
  for (int i = 0; i < 4; ++i) {
    pool.push_back(SymExpr::Arg(i));
    pool.push_back(SymAdd(SymExpr::Arg(i), 4 * (i + 1)));
  }
  pool.push_back(SymExpr::Sp0());
  pool.push_back(SymAdd(SymExpr::Sp0(), -8));
  pool.push_back(SymAdd(SymExpr::Sp0(), 16));
  pool.push_back(SymExpr::Heap(0xbeef));
  pool.push_back(SymAdd(SymExpr::Heap(0xbeef), 12));
  pool.push_back(SymExpr::Ret(0x1234));
  return pool;
}

/// A pool of values to store: constants, symbols, a taint marker.
std::vector<SymRef> ValuePool() {
  std::vector<SymRef> pool;
  pool.push_back(SymExpr::Const(0));
  pool.push_back(SymExpr::Const(0x41414141));
  pool.push_back(SymExpr::Arg(2));
  pool.push_back(SymExpr::InitReg(5));
  pool.push_back(SymExpr::Taint(0x2000, "recv"));
  pool.push_back(SymExpr::Deref(SymExpr::Arg(1)));
  return pool;
}

/// Asserts the observable surface of two states matches: every
/// register, every pool address, the constraint trail, the taint mask.
void ExpectStatesAgree(SymState& cow, SymState& legacy,
                       const std::vector<SymRef>& addrs, int tag) {
  for (int r = 0; r < kNumIrRegs; ++r) {
    const SymRef& a = cow.Reg(r);
    const SymRef& b = legacy.Reg(r);
    ASSERT_TRUE(a && b) << "reg " << r << " missing (step " << tag << ")";
    EXPECT_TRUE(SymExpr::Equal(a, b))
        << "reg " << r << ": " << a->ToString() << " vs " << b->ToString()
        << " (step " << tag << ")";
  }
  for (size_t i = 0; i < addrs.size(); ++i) {
    SymRef pa = cow.PeekMem(addrs[i]);
    SymRef pb = legacy.PeekMem(addrs[i]);
    ASSERT_EQ(pa != nullptr, pb != nullptr)
        << "addr[" << i << "] definedness diverged (step " << tag << ")";
    if (pa) {
      EXPECT_TRUE(SymExpr::Equal(pa, pb))
          << "addr[" << i << "]: " << pa->ToString() << " vs "
          << pb->ToString() << " (step " << tag << ")";
    }
  }
  EXPECT_EQ(cow.MemEntryCount(), legacy.MemEntryCount())
      << "(step " << tag << ")";
  EXPECT_EQ(cow.ConstraintCount(), legacy.ConstraintCount())
      << "(step " << tag << ")";
  std::vector<PathConstraint> ca = cow.ConstraintsSnapshot();
  std::vector<PathConstraint> cb = legacy.ConstraintsSnapshot();
  ASSERT_EQ(ca.size(), cb.size()) << "(step " << tag << ")";
  for (size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].op, cb[i].op);
    EXPECT_EQ(ca[i].taken, cb[i].taken);
    EXPECT_EQ(ca[i].site, cb[i].site);
    EXPECT_TRUE(SymExpr::Equal(ca[i].lhs, cb[i].lhs));
    EXPECT_TRUE(SymExpr::Equal(ca[i].rhs, cb[i].rhs));
  }
  EXPECT_EQ(cow.taint_mask(), legacy.taint_mask()) << "(step " << tag << ")";
}

TEST(StateProperty, RandomizedInterleavingsAgree) {
  std::vector<SymRef> addrs = AddressPool();
  std::vector<SymRef> values = ValuePool();
  for (uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(0x57A7E + seed);
    SymState cow_state = [] {
      ScopedStateCow on(true);
      return SymState::Entry(Arch::kDtArm);
    }();
    SymState legacy_state = [] {
      ScopedStateCow off(false);
      return SymState::Entry(Arch::kDtArm);
    }();
    ASSERT_TRUE(cow_state.cow());
    ASSERT_FALSE(legacy_state.cow());
    // Forked lineages kept in lockstep pairs; ops apply to a random
    // live pair, forks push a new pair, so spine sharing is exercised
    // across many generations.
    std::vector<std::pair<SymState, SymState>> lineages;
    lineages.emplace_back(std::move(cow_state), std::move(legacy_state));
    for (int step = 0; step < 400; ++step) {
      auto& [cw, lg] = lineages[rng.Below(lineages.size())];
      switch (rng.Below(6)) {
        case 0: {  // store
          const SymRef& addr = addrs[rng.Below(addrs.size())];
          const SymRef& value = values[rng.Below(values.size())];
          uint8_t size = rng.Chance(0.5) ? 4 : 1;
          cw.StoreMem(addr, value, size);
          lg.StoreMem(addr, value, size);
          break;
        }
        case 1: {  // load (defined or lazy deref)
          const SymRef& addr = addrs[rng.Below(addrs.size())];
          bool da = false, db = false;
          SymRef va = cw.LoadMem(addr, 4, &da);
          SymRef vb = lg.LoadMem(addr, 4, &db);
          ASSERT_EQ(da, db) << "seed " << seed << " step " << step;
          ASSERT_TRUE(SymExpr::Equal(va, vb))
              << "seed " << seed << " step " << step << ": "
              << va->ToString() << " vs " << vb->ToString();
          break;
        }
        case 2: {  // register write
          int reg = static_cast<int>(rng.Below(kNumIrRegs));
          const SymRef& value = values[rng.Below(values.size())];
          cw.SetReg(reg, value);
          lg.SetReg(reg, value);
          break;
        }
        case 3: {  // constraint push
          PathConstraint c;
          c.op = BinOp::kCmpLt;
          c.lhs = values[rng.Below(values.size())];
          c.rhs = SymExpr::Const(static_cast<uint32_t>(rng.Below(256)));
          c.taken = rng.Chance(0.5);
          c.site = static_cast<uint32_t>(0x4000 + step);
          cw.PushConstraint(c);
          lg.PushConstraint(c);
          break;
        }
        case 4: {  // visited-block marking
          // addr<->index is a bijection in the engine (index is the block's
          // dense position for its address), so derive both from one draw.
          int index = static_cast<int>(rng.Below(64));
          uint32_t addr = static_cast<uint32_t>(0x8000 + index * 4);
          ASSERT_EQ(cw.VisitedBlock(addr, index),
                    lg.VisitedBlock(addr, index))
              << "seed " << seed << " step " << step;
          cw.MarkVisited(addr, index);
          lg.MarkVisited(addr, index);
          break;
        }
        case 5: {  // fork: child must see parent state, then diverge
          if (lineages.size() >= 8) break;
          SymState cc = cw.Fork();
          SymState lc = lg.Fork();
          lineages.emplace_back(std::move(cc), std::move(lc));
          break;
        }
      }
    }
    for (size_t li = 0; li < lineages.size(); ++li) {
      ExpectStatesAgree(lineages[li].first, lineages[li].second, addrs,
                        static_cast<int>(li));
    }
  }
}

TEST(StateProperty, ForkIsolationAcrossRepresentations) {
  // Writes after a fork must stay invisible to the sibling — in both
  // representations, including overlay entries committed to the shared
  // trie at fork time.
  for (bool cow : {true, false}) {
    ScopedStateCow toggle(cow);
    SymState parent = SymState::Entry(Arch::kDtArm);
    SymRef addr = SymAdd(SymExpr::Arg(0), 8);
    SymRef before = SymExpr::Const(7);
    parent.StoreMem(addr, before, 4);
    SymState child = parent.Fork();
    // Diverge both sides.
    child.StoreMem(addr, SymExpr::Const(42), 4);
    child.SetReg(3, SymExpr::Const(42));
    SymRef parent_val = parent.PeekMem(addr);
    ASSERT_TRUE(parent_val);
    EXPECT_TRUE(SymExpr::Equal(parent_val, before))
        << "child store leaked into parent (cow=" << cow << ")";
    parent.StoreMem(addr, SymExpr::Const(99), 4);
    SymRef child_val = child.PeekMem(addr);
    ASSERT_TRUE(child_val);
    EXPECT_TRUE(SymExpr::Equal(child_val, SymExpr::Const(42)))
        << "parent store leaked into child (cow=" << cow << ")";
    EXPECT_TRUE(SymExpr::Equal(parent.Reg(3), child.Reg(3)) ==
                false)  // parent still holds entry value
        << "register write leaked (cow=" << cow << ")";
  }
}

TEST(StateProperty, TaintMaskTracksTaintedStores) {
  for (bool cow : {true, false}) {
    ScopedStateCow toggle(cow);
    SymState state = SymState::Entry(Arch::kDtArm);
    EXPECT_FALSE(state.MayHoldTaint()) << "cow=" << cow;
    // Untainted store: mask stays clear.
    state.StoreMem(SymExpr::Arg(0), SymExpr::Const(1), 4);
    EXPECT_FALSE(state.MayHoldTaint()) << "cow=" << cow;
    // Tainted store through arg1: mask sets the arg-class bit.
    state.StoreMem(SymAdd(SymExpr::Arg(1), 4),
                   SymExpr::Taint(0x100, "recv"), 4);
    EXPECT_TRUE(state.MayHoldTaint()) << "cow=" << cow;
    EXPECT_NE(state.taint_mask() & (kTaintClassArg0 << 1), 0u)
        << "cow=" << cow;
    // The mask is monotone: overwriting does not clear it.
    state.StoreMem(SymAdd(SymExpr::Arg(1), 4), SymExpr::Const(0), 4);
    EXPECT_TRUE(state.MayHoldTaint()) << "cow=" << cow;
    // Forks inherit the mask.
    SymState child = state.Fork();
    EXPECT_EQ(child.taint_mask(), state.taint_mask()) << "cow=" << cow;
  }
}

TEST(StateProperty, OverlaySpillKeepsLoadsExact) {
  // Far more distinct addresses than the overlay holds: every store
  // must stay retrievable after the forced spills to the trie.
  ScopedStateCow on(true);
  SymState state = SymState::Entry(Arch::kDtArm);
  std::vector<SymRef> addrs;
  for (int i = 0; i < 64; ++i) {
    addrs.push_back(SymAdd(SymExpr::Arg(i % 4), 8 * i));
  }
  for (int i = 0; i < 64; ++i) {
    state.StoreMem(addrs[i], SymExpr::Const(static_cast<uint32_t>(i)), 4);
  }
  for (int i = 0; i < 64; ++i) {
    SymRef v = state.PeekMem(addrs[i]);
    ASSERT_TRUE(v) << "addr " << i << " lost";
    EXPECT_TRUE(
        SymExpr::Equal(v, SymExpr::Const(static_cast<uint32_t>(i))))
        << "addr " << i;
  }
  // Overwrites replace, not duplicate.
  size_t count = state.MemEntryCount();
  state.StoreMem(addrs[0], SymExpr::Const(0xff), 4);
  EXPECT_EQ(state.MemEntryCount(), count);
}

}  // namespace
}  // namespace dtaint
