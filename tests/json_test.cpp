#include <gtest/gtest.h>

#include "src/report/json.h"
#include "src/synth/firmware_synth.h"

namespace dtaint {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonReport, EmptyReportIsWellFormed) {
  AnalysisReport report;
  report.binary_name = "empty";
  std::string json = ReportToJson(report);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"binary\":\"empty\""), std::string::npos);
  EXPECT_NE(json.find("\"findings\":[]"), std::string::npos);
}

TEST(JsonReport, FindingsSerializedWithHops) {
  // Real report from a synthesized vulnerable binary.
  ProgramSpec spec;
  spec.name = "j";
  spec.arch = Arch::kDtArm;
  spec.seed = 3;
  spec.filler_functions = 2;
  PlantSpec p;
  p.id = "jp";
  p.pattern = VulnPattern::kDirect;
  p.source = "getenv";
  p.sink = "system";
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok());
  DTaint detector;
  auto report = detector.Analyze(out->binary);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->findings.size(), 1u);

  std::string json = ReportToJson(*report);
  EXPECT_NE(json.find("\"class\":\"Command Injection\""),
            std::string::npos);
  EXPECT_NE(json.find("\"sink\":\"system\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"getenv\""), std::string::npos);
  EXPECT_NE(json.find("\"function\":\"jp_handler\""), std::string::npos);
  EXPECT_NE(json.find("\"hops\":["), std::string::npos);

  // Structural sanity: balanced braces/brackets, no dangling commas.
  int depth = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : json) {
    if (in_string) {
      if (c == '"' && prev != '\\') in_string = false;
    } else {
      if (c == '"') in_string = true;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        EXPECT_NE(prev, ',') << "dangling comma";
        --depth;
      }
      EXPECT_GE(depth, 0);
    }
    prev = c;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonScore, RoundNumbersPresent) {
  DetectionScore score;
  score.true_positives = 3;
  score.false_negatives = 1;
  score.found_ids = {"a", "b", "c"};
  score.missed_ids = {"d"};
  std::string json = ScoreToJson(score);
  EXPECT_NE(json.find("\"true_positives\":3"), std::string::npos);
  EXPECT_NE(json.find("\"recall\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"missed\":[\"d\"]"), std::string::npos);
}

}  // namespace
}  // namespace dtaint
