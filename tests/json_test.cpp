#include <gtest/gtest.h>

#include "src/report/json.h"
#include "src/synth/firmware_synth.h"
#include "src/util/json.h"

namespace dtaint {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonReport, EmptyReportIsWellFormed) {
  AnalysisReport report;
  report.binary_name = "empty";
  std::string json = ReportToJson(report);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"binary\":\"empty\""), std::string::npos);
  EXPECT_NE(json.find("\"findings\":[]"), std::string::npos);
}

TEST(JsonReport, FindingsSerializedWithHops) {
  // Real report from a synthesized vulnerable binary.
  ProgramSpec spec;
  spec.name = "j";
  spec.arch = Arch::kDtArm;
  spec.seed = 3;
  spec.filler_functions = 2;
  PlantSpec p;
  p.id = "jp";
  p.pattern = VulnPattern::kDirect;
  p.source = "getenv";
  p.sink = "system";
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok());
  DTaint detector;
  auto report = detector.Analyze(out->binary);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->findings.size(), 1u);

  std::string json = ReportToJson(*report);
  EXPECT_NE(json.find("\"class\":\"Command Injection\""),
            std::string::npos);
  EXPECT_NE(json.find("\"sink\":\"system\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"getenv\""), std::string::npos);
  EXPECT_NE(json.find("\"function\":\"jp_handler\""), std::string::npos);
  EXPECT_NE(json.find("\"hops\":["), std::string::npos);

  // Structural sanity: balanced braces/brackets, no dangling commas.
  int depth = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : json) {
    if (in_string) {
      if (c == '"' && prev != '\\') in_string = false;
    } else {
      if (c == '"') in_string = true;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        EXPECT_NE(prev, ',') << "dangling comma";
        --depth;
      }
      EXPECT_GE(depth, 0);
    }
    prev = c;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonReport, MetricsObjectEmbedsPerRunSnapshot) {
  AnalysisReport report;
  report.binary_name = "m";
  report.metrics.counters["cache.hits"] = 7;
  report.metrics.counters["pathfind.paths_found"] = 2;
  report.metrics.gauges["cache.memory_bytes"] = 4096.0;
  obs::HistogramStats h;
  h.count = 3;
  h.sum = 30;
  h.max = 20;
  h.p50 = 15;
  h.p95 = 20;
  report.metrics.histograms["summary.function_micros"] = h;
  report.pathfinder_stats.sinks_visited = 4;
  report.pathfinder_stats.paths_explored = 9;
  report.pathfinder_stats.paths_found = 2;
  report.hot_functions = {{"hot_fn", 0.25, false}};

  std::string json = ReportToJson(report);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_object());
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("cache.hits")->number(), 7.0);
  EXPECT_DOUBLE_EQ(counters->Find("pathfind.paths_found")->number(), 2.0);
  EXPECT_DOUBLE_EQ(
      metrics->Find("gauges")->Find("cache.memory_bytes")->number(), 4096.0);
  const JsonValue* histogram =
      metrics->Find("histograms")->Find("summary.function_micros");
  ASSERT_NE(histogram, nullptr);
  EXPECT_DOUBLE_EQ(histogram->Find("count")->number(), 3.0);
  EXPECT_DOUBLE_EQ(histogram->Find("p95")->number(), 20.0);

  const JsonValue* pathfinder = parsed->Find("pathfinder");
  ASSERT_NE(pathfinder, nullptr);
  EXPECT_DOUBLE_EQ(pathfinder->Find("sinks_visited")->number(), 4.0);
  EXPECT_DOUBLE_EQ(pathfinder->Find("paths_explored")->number(), 9.0);

  const JsonValue* hot = parsed->Find("hot_functions");
  ASSERT_NE(hot, nullptr);
  ASSERT_TRUE(hot->is_array());
  ASSERT_EQ(hot->array().size(), 1u);
  EXPECT_EQ(hot->array()[0].Find("name")->string(), "hot_fn");
  EXPECT_DOUBLE_EQ(hot->array()[0].Find("seconds")->number(), 0.25);
  EXPECT_EQ(hot->array()[0].Find("cached")->boolean(), false);
}

TEST(JsonReport, FullReportParsesWithRepoParser) {
  // End-to-end: a real report (findings, hops, constraints, metrics)
  // must survive the repo's own JSON parser — producer and consumer
  // cannot drift apart.
  ProgramSpec spec;
  spec.name = "rt";
  spec.arch = Arch::kDtMips;
  spec.seed = 11;
  spec.filler_functions = 3;
  PlantSpec p;
  p.id = "rt";
  p.pattern = VulnPattern::kWrapper;
  p.source = "recv";
  p.sink = "strcpy";
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok());
  auto report = DTaint().Analyze(out->binary);
  ASSERT_TRUE(report.ok());

  auto parsed = ParseJson(ReportToJson(*report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("binary")->string(), "rt");
  ASSERT_NE(parsed->Find("findings"), nullptr);
  EXPECT_EQ(parsed->Find("findings")->array().size(),
            report->findings.size());
  ASSERT_NE(parsed->Find("metrics"), nullptr);
  EXPECT_DOUBLE_EQ(
      parsed->Find("metrics")->Find("counters")->Find("lift.functions")
          ->number(),
      static_cast<double>(report->functions));
}

TEST(JsonReport, ResilienceKeysSerializedAndParseable) {
  AnalysisReport report;
  report.binary_name = "resil";
  report.complete = false;
  report.degraded_functions = 2;
  report.suppressed_findings = 1;
  report.interproc_stats.truncated_functions = 3;
  Incident inc;
  inc.binary = "resil";
  inc.phase = "summary";
  inc.detail = "fn_0001";
  inc.status = OutOfRange("analysis budget exhausted (steps)");
  inc.budget.steps = 512;
  inc.budget.states = 7;
  inc.budget.exhausted_by = BudgetExhaustion::kSteps;
  report.incidents.push_back(inc);

  auto parsed = ParseJson(ReportToJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("complete")->boolean(), false);
  const JsonValue* resilience = parsed->Find("resilience");
  ASSERT_NE(resilience, nullptr);
  EXPECT_EQ(resilience->Find("degraded_functions")->number(), 2);
  EXPECT_EQ(resilience->Find("truncated_functions")->number(), 3);
  EXPECT_EQ(resilience->Find("suppressed_findings")->number(), 1);
  const JsonValue* incidents = parsed->Find("incidents");
  ASSERT_NE(incidents, nullptr);
  ASSERT_EQ(incidents->array().size(), 1u);
  const JsonValue& first = incidents->array()[0];
  EXPECT_EQ(first.Find("phase")->string(), "summary");
  EXPECT_EQ(first.Find("detail")->string(), "fn_0001");
  EXPECT_EQ(first.Find("code")->string(), "OUT_OF_RANGE");
  ASSERT_NE(first.Find("budget"), nullptr);
  EXPECT_EQ(first.Find("budget")->Find("steps")->number(), 512);
  EXPECT_EQ(first.Find("budget")->Find("exhausted_by")->string(), "steps");
}

TEST(JsonReport, CompleteReportOmitsNoKeys) {
  // A clean report still carries complete:true and an empty incidents
  // array — consumers should not need key-presence checks.
  AnalysisReport report;
  report.binary_name = "clean";
  auto parsed = ParseJson(ReportToJson(report));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("complete")->boolean(), true);
  EXPECT_TRUE(parsed->Find("incidents")->array().empty());
  ASSERT_NE(parsed->Find("pathfinder"), nullptr);
  EXPECT_EQ(parsed->Find("pathfinder")->Find("degraded_paths")->number(),
            0);
}

TEST(JsonFindings, BareArrayMatchesReportFindings) {
  // FindingsToJson must emit exactly the "findings" array of
  // ReportToJson — differential tests rely on byte-comparability.
  ProgramSpec spec;
  spec.name = "fj";
  spec.arch = Arch::kDtArm;
  spec.seed = 5;
  spec.filler_functions = 2;
  PlantSpec p;
  p.id = "fj";
  p.pattern = VulnPattern::kDirect;
  p.source = "getenv";
  p.sink = "system";
  spec.plants = {p};
  auto out = SynthesizeBinary(spec);
  ASSERT_TRUE(out.ok());
  auto report = DTaint().Analyze(out->binary);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->findings.empty());
  std::string bare = FindingsToJson(report->findings);
  auto parsed = ParseJson(bare);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->array().size(), report->findings.size());
  EXPECT_NE(ReportToJson(*report).find(bare), std::string::npos);
}

TEST(JsonScore, RoundNumbersPresent) {
  DetectionScore score;
  score.true_positives = 3;
  score.false_negatives = 1;
  score.found_ids = {"a", "b", "c"};
  score.missed_ids = {"d"};
  std::string json = ScoreToJson(score);
  EXPECT_NE(json.find("\"true_positives\":3"), std::string::npos);
  EXPECT_NE(json.find("\"recall\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"missed\":[\"d\"]"), std::string::npos);
}

}  // namespace
}  // namespace dtaint
