// corpus_scan: batch-audits a fleet of firmware images — the
// large-scale use case (the paper crawls 6,529 vendor images).
//
// Synthesizes a mixed corpus (several vendors/architectures, some
// encrypted images that resist extraction, varying vulnerability
// load), then runs the whole pipeline over each and prints a fleet
// report: per image the extraction outcome and findings, then vendor
// aggregates and precision/recall over the planted ground truth.
//
// Resilience: the scan never dies because one image is bad. Corrupt
// images, unloadable binaries, and budget-exhausted functions are
// recorded as incidents (phase + reason + effort counters) and the
// scan moves on; vendor-encrypted images are an *expected* limitation
// (the paper's >65% unpack-failure rate) and are tallied separately.
// Exit code scores only images whose analysis ran to completion — an
// incomplete image's missing findings are a triage item, not a
// detection failure.
//
//   --deadline-ms MS / --max-steps N / --max-states N /
//   --max-expr-nodes N   per-function analysis budget (0 = unlimited)
//   --alias-mode MODE    "eager" (Algorithm 1 up-front rewrite) or
//                        "ondemand" (lazy SSE queries over linked
//                        summaries; also resolves indirect calls
//                        through cross-call registration stores)
//   --fail-fast          stop at the first incident, exit nonzero
//   --json-out FILE      fleet report as JSON (images, incidents,
//                        totals; findings via FindingsToJson so runs
//                        are byte-comparable)
//   --corrupt K          deterministically corrupt the first K
//                        extractable images (resilience demos/tests)
//   --cache-dir DIR      one persistent function-summary cache shared
//                        across the whole fleet: identical functions
//                        in different images (and the whole fleet on a
//                        re-run) are analyzed once; entries are keyed
//                        by alias mode, so mixed-mode runs are safe
//   --threads N          run each image's intraprocedural summary
//                        phase on N worker threads (profitable on
//                        multi-core hosts now that expressions are
//                        hash-consed; results are identical for any
//                        thread count)
//
// Crash isolation & resume (src/resilience/supervisor.h): with
// `--isolate` each image is scanned in a forked worker process — a
// SIGSEGV, OOM kill, or hang in one image can no longer take the fleet
// run down. Failed workers are retried with backoff under a tightened
// budget (`--max-retries N`, default 2) and quarantined when the
// retries are spent; `--image-timeout-ms MS` arms a per-image
// wall-clock watchdog and `--mem-limit-mb MB` an RLIMIT_AS cap.
// `--journal DIR` appends a crash-safe checkpoint record per image
// outcome, and `--resume` replays it so a rerun after kill -9 skips
// completed images and produces a byte-identical merged report. The
// default (no flags) stays fully in-process.
//
// Observability: `--log-level LEVEL` sets the stderr log threshold,
// `--trace-out FILE` streams a fleet-wide Chrome trace (JSON Array
// Format, crash-tolerant — append `]` to recover a killed worker's
// file), `--metrics-out FILE` dumps the metrics registry,
// `--events-out FILE` streams the NDJSON scan event stream (schema v1,
// see src/obs/events.h) with a `<FILE>.flight.ndjson` flight-recorder
// dump on incident or fatal signal, and `--heartbeat-ms MS` sets the
// heartbeat cadence on that stream (default 1000, 0 = off; a final
// beat is always emitted at shutdown). Aggregate one or more event
// streams with tools/scan_report.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "src/binary/loader.h"
#include "src/cache/summary_cache.h"
#include "src/core/dtaint.h"
#include "src/firmware/extractor.h"
#include "src/firmware/packer.h"
#include "src/obs/events.h"
#include "src/obs/log.h"
#include "src/obs/stopwatch.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/report/json.h"
#include "src/report/scoring.h"
#include "src/report/table.h"
#include "src/resilience/fault.h"
#include "src/resilience/incident.h"
#include "src/resilience/journal.h"
#include "src/resilience/supervisor.h"
#include "src/symexec/symstate.h"
#include "src/synth/firmware_synth.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

struct CorpusItem {
  FirmwareSpec spec;
  std::vector<uint8_t> blob;
  std::vector<PlantedVuln> ground_truth;
};

std::vector<CorpusItem> BuildCorpus() {
  struct VendorPlan {
    const char* vendor;
    const char* product;
    Arch arch;
    Packing packing;
    int vulns;
    int safes;
  };
  const VendorPlan plans[] = {
      {"D-Link", "DIR-505", Arch::kDtMips, Packing::kPlain, 2, 1},
      {"D-Link", "DIR-868L", Arch::kDtArm, Packing::kXor, 1, 1},
      {"Netgear", "R7000", Arch::kDtArm, Packing::kPlain, 2, 2},
      {"Netgear", "WNR2000", Arch::kDtMips, Packing::kEncrypted, 1, 0},
      {"Tenda", "AC15", Arch::kDtArm, Packing::kPlain, 3, 1},
      {"TP-Link", "WR841N", Arch::kDtMips, Packing::kXor, 0, 2},
      {"Foscam", "C1", Arch::kDtArm, Packing::kUnknown, 2, 0},
      {"Zyxel", "NBG6817", Arch::kDtMips, Packing::kPlain, 1, 1},
  };
  const VulnPattern patterns[] = {
      VulnPattern::kDirect, VulnPattern::kWrapper, VulnPattern::kAliasChain,
      VulnPattern::kLoopCopy, VulnPattern::kDispatch};
  const std::pair<const char*, const char*> combos[] = {
      {"getenv", "system"}, {"recv", "strcpy"},  {"read", "memcpy"},
      {"websGetVar", "system"}, {"recv", "loop"}, {"recv", "memcpy"},
  };

  Rng rng(20260704);
  std::vector<CorpusItem> corpus;
  int seq = 0;
  for (const VendorPlan& plan : plans) {
    CorpusItem item;
    item.spec.vendor = plan.vendor;
    item.spec.product = plan.product;
    item.spec.version = "1." + std::to_string(rng.Below(9));
    item.spec.release_year = static_cast<uint16_t>(rng.Range(2012, 2016));
    item.spec.packing = plan.packing;
    item.spec.binary_path = "/bin/httpd";
    item.spec.program.name = "httpd";
    item.spec.program.arch = plan.arch;
    item.spec.program.seed = 9000 + seq;
    item.spec.program.filler_functions =
        static_cast<int>(rng.Range(30, 90));
    for (int v = 0; v < plan.vulns + plan.safes; ++v) {
      PlantSpec p;
      p.id = std::string(plan.product) + "_p" + std::to_string(v);
      size_t pi = rng.Below(std::size(patterns));
      p.pattern = patterns[pi];
      // Loop/dispatch need buffer sources; pick compatible combos.
      size_t ci = p.pattern == VulnPattern::kLoopCopy
                      ? 4
                      : (p.pattern == VulnPattern::kDispatch
                             ? 5
                             : rng.Below(4));
      p.source = combos[ci].first;
      p.sink = p.pattern == VulnPattern::kLoopCopy ? "loop"
                                                   : combos[ci].second;
      p.sanitized = v >= plan.vulns;
      item.spec.program.plants.push_back(std::move(p));
    }
    auto fw = SynthesizeFirmware(item.spec);
    if (!fw.ok()) continue;
    item.blob = FirmwarePacker::Pack(fw->image);
    item.ground_truth = std::move(fw->ground_truth);
    corpus.push_back(std::move(item));
    ++seq;
  }
  return corpus;
}

/// Flips one byte mid-payload: the extractor's checksum catches it and
/// the image becomes a deterministic "corrupt data" incident.
void CorruptBlob(std::vector<uint8_t>& blob) {
  if (!blob.empty()) blob[blob.size() / 2] ^= 0x5A;
}

void PrintUsage() {
  std::printf(
      "usage: corpus_scan [options]\n"
      "\n"
      "analysis:\n"
      "  --threads N          worker threads for the summary phase\n"
      "  --cache-dir DIR      persistent function-summary cache\n"
      "  --alias-mode MODE    eager | ondemand\n"
      "  --deadline-ms MS / --max-steps N / --max-states N /\n"
      "  --max-expr-nodes N   per-function analysis budget (0 = off)\n"
      "  --corrupt K          corrupt first K extractable images\n"
      "  --fail-fast          stop at the first incident, exit nonzero\n"
      "  --legacy-state       legacy (non-CoW) symbolic state, for A/B\n"
      "\n"
      "isolation & resume:\n"
      "  --isolate            scan each image in a forked worker\n"
      "                       process (crash/OOM/hang isolation)\n"
      "  --workers N          concurrent isolated workers (default 1)\n"
      "  --max-retries N      retries per failed image before\n"
      "                       quarantine (default 2)\n"
      "  --image-timeout-ms MS  per-image wall-clock watchdog (0 = off)\n"
      "  --mem-limit-mb MB    per-worker address-space cap (0 = off)\n"
      "  --journal DIR        append-only checkpoint journal\n"
      "  --resume             replay the journal; skip images already\n"
      "                       done or quarantined (needs --journal)\n"
      "\n"
      "output & observability:\n"
      "  --json-out FILE      fleet report as JSON\n"
      "  --log-level LEVEL    error | warn | info | debug (stderr)\n"
      "  --trace-out FILE     streamed Chrome trace (crash-tolerant\n"
      "                       JSON Array Format; append ']' to recover)\n"
      "  --metrics-out FILE   metrics registry dump as JSON\n"
      "  --events-out FILE    NDJSON scan event stream (schema v1) +\n"
      "                       FILE.flight.ndjson flight-recorder dump\n"
      "                       on incident or fatal signal\n"
      "  --heartbeat-ms MS    heartbeat cadence on the event stream\n"
      "                       (default 1000, 0 = off)\n");
}

/// Per-image outcome, accumulated for the fleet JSON report.
struct ImageResult {
  std::string label;
  std::string vendor;
  std::string product;
  std::string arch;
  std::string packing;
  /// "ok", "unextractable" (expected vendor encryption), "failed" (an
  /// incident was recorded for this image), or "quarantined" (the
  /// supervisor gave up after retries).
  std::string status;
  bool complete = false;
  uint64_t functions = 0;
  uint64_t finding_count = 0;
  std::string findings_json = "[]";
  bool has_score = false;
  std::string score_json;
  uint32_t attempts = 1;
};

struct FleetTotals {
  size_t tp = 0, fn = 0, fp = 0;
  size_t unextractable = 0, complete_images = 0;
  size_t retries = 0, quarantined = 0, worker_restarts = 0;
};

std::string FleetToJson(const std::vector<ImageResult>& images,
                        const std::vector<Incident>& incidents,
                        const FleetTotals& totals) {
  std::string out = "{\n  \"images\": [";
  for (size_t i = 0; i < images.size(); ++i) {
    const ImageResult& im = images[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"label\": \"" + JsonEscape(im.label) + "\"";
    out += ", \"vendor\": \"" + JsonEscape(im.vendor) + "\"";
    out += ", \"product\": \"" + JsonEscape(im.product) + "\"";
    out += ", \"arch\": \"" + JsonEscape(im.arch) + "\"";
    out += ", \"packing\": \"" + JsonEscape(im.packing) + "\"";
    out += ", \"status\": \"" + JsonEscape(im.status) + "\"";
    out += std::string(", \"complete\": ") + (im.complete ? "true" : "false");
    out += ", \"functions\": " + std::to_string(im.functions);
    out += ", \"attempts\": " + std::to_string(im.attempts);
    out += ", \"findings\": " + im.findings_json;
    if (im.has_score) out += ", \"score\": " + im.score_json;
    out += "}";
  }
  out += "\n  ],\n  \"incidents\": " + IncidentsToJson(incidents);
  out += ",\n  \"totals\": {";
  out += "\"images\": " + std::to_string(images.size());
  out += ", \"complete_images\": " + std::to_string(totals.complete_images);
  out += ", \"unextractable\": " + std::to_string(totals.unextractable);
  out += ", \"incidents\": " + std::to_string(incidents.size());
  out += ", \"retries\": " + std::to_string(totals.retries);
  out += ", \"quarantined\": " + std::to_string(totals.quarantined);
  out += ", \"worker_restarts\": " + std::to_string(totals.worker_restarts);
  out += ", \"tp\": " + std::to_string(totals.tp);
  out += ", \"fn\": " + std::to_string(totals.fn);
  out += ", \"fp\": " + std::to_string(totals.fp);
  out += "}\n}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<SummaryCache> cache;
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  const char* json_out = nullptr;
  const char* events_out = nullptr;
  const char* journal_dir = nullptr;
  int heartbeat_ms = 1000;
  int num_threads = 1;
  int corrupt_count = 0;
  int workers = 1;
  int max_retries = 2;
  int image_timeout_ms = 0;
  int mem_limit_mb = 0;
  bool fail_fast = false;
  bool isolate = false;
  bool resume = false;
  AnalysisBudget budget;
  AliasMode alias_mode = AliasMode::kEager;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage();
      return 0;
    }
    if (std::strcmp(argv[i], "--fail-fast") == 0) {
      fail_fast = true;
      continue;
    }
    if (std::strcmp(argv[i], "--isolate") == 0) {
      isolate = true;
      continue;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
      continue;
    }
    if (std::strcmp(argv[i], "--legacy-state") == 0) {
      // A/B escape hatch: legacy deep-copying symbolic state (reports
      // are byte-identical either way; this trades speed for nothing).
      SetStateCow(false);
      continue;
    }
    if (i + 1 >= argc) continue;
    if (std::strcmp(argv[i], "--threads") == 0) {
      num_threads = atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      CacheConfig cache_config;
      cache_config.disk_dir = argv[i + 1];
      cache.emplace(cache_config);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      budget.deadline_ms = atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--max-steps") == 0) {
      budget.max_steps = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-states") == 0) {
      budget.max_states = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-expr-nodes") == 0) {
      budget.max_expr_nodes = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--alias-mode") == 0) {
      if (!ParseAliasMode(argv[i + 1], &alias_mode)) {
        std::fprintf(stderr, "bad --alias-mode: %s (want eager|ondemand)\n",
                     argv[i + 1]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--corrupt") == 0) {
      corrupt_count = atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--max-retries") == 0) {
      max_retries = atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--image-timeout-ms") == 0) {
      image_timeout_ms = atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--mem-limit-mb") == 0) {
      mem_limit_mb = atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      journal_dir = argv[i + 1];
    } else if (std::strcmp(argv[i], "--json-out") == 0) {
      json_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--log-level") == 0) {
      obs::LogLevel level;
      if (!obs::ParseLogLevel(argv[i + 1], &level)) {
        std::fprintf(stderr, "bad --log-level: %s\n", argv[i + 1]);
        return 2;
      }
      obs::SetLogLevel(level);
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--events-out") == 0) {
      events_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--heartbeat-ms") == 0) {
      heartbeat_ms = atoi(argv[i + 1]);
    }
  }
  if (resume && !journal_dir) {
    std::fprintf(stderr, "--resume needs --journal DIR\n");
    return 2;
  }
  if (trace_out && !obs::Tracer::Global().StreamTo(trace_out)) {
    std::fprintf(stderr, "cannot open trace file %s\n", trace_out);
    return 2;
  }
  obs::EventStream& events = obs::EventStream::Global();
  if (events_out && !events.Open(events_out, "corpus_scan")) {
    std::fprintf(stderr, "cannot open event stream %s\n", events_out);
    return 2;
  }

  std::vector<CorpusItem> corpus = BuildCorpus();
  // Deterministic damage for the resilience demo: only images whose
  // packing is recoverable would otherwise extract, so corrupting them
  // converts "ok" images into incidents without touching the rest.
  int corrupted = 0;
  for (CorpusItem& item : corpus) {
    if (corrupted >= corrupt_count) break;
    if (item.spec.packing == Packing::kPlain ||
        item.spec.packing == Packing::kXor) {
      CorruptBlob(item.blob);
      ++corrupted;
    }
  }
  std::printf("fleet scan: %zu firmware images%s%s%s\n\n", corpus.size(),
              cache ? " (summary cache enabled)" : "",
              corrupted ? " (corruption injected)" : "",
              isolate ? " (isolated workers)" : "");

  TextTable table({"Image", "Arch", "Packing", "Status", "Complete", "Fns",
                   "Findings", "TP", "FP+twin", "Missed", "Att"});
  FleetTotals totals;
  std::vector<ImageResult> images;
  std::vector<Incident> incidents;
  bool aborted = false;

  if (events.enabled()) {
    events.Emit(obs::Event("corpus_begin")
                    .Num("images", static_cast<uint64_t>(corpus.size())));
  }
  obs::Heartbeat heartbeat(events,
                           heartbeat_ms > 0
                               ? static_cast<uint32_t>(heartbeat_ms)
                               : 0);
  heartbeat.images_total().store(corpus.size(), std::memory_order_relaxed);

  // The per-image scan body: the unit of work both the in-process loop
  // and the supervisor's workers run. Emits image_begin/image_end
  // events itself (inside the worker, in isolated mode); everything
  // the fleet report needs comes back in the ScanOutcome, with JSON
  // fragments pre-serialized so the journal can replay them
  // byte-identically.
  auto scan_image = [&](size_t idx, const AnalysisBudget& image_budget,
                        bool consult_crash) -> ScanOutcome {
    const CorpusItem& item = corpus[idx];
    std::string label = item.spec.vendor + " " + item.spec.product;
    ScanOutcome out;
    obs::Stopwatch image_watch;
    if (events.enabled()) {
      events.Emit(obs::Event("image_begin")
                      .Str("image", label)
                      .Str("vendor", item.spec.vendor)
                      .Str("product", item.spec.product)
                      .Str("arch", ArchName(item.spec.program.arch))
                      .Str("packing", PackingName(item.spec.packing)));
    }
    // Kill-mid-scan oracle hook: a "crash" fault here dies hard with
    // the image_begin on disk and no image_end — exactly the torn
    // stream scan_report must triage (tests/events_test.cpp). Under
    // the supervisor the parent consults this site instead, before
    // the first dispatch.
    if (consult_crash &&
        FaultPlan::Global().ShouldFail(FaultSite::kCrash, label)) {
      std::abort();
    }

    auto record_incident = [&](const std::string& phase,
                               const std::string& detail,
                               const Status& status) {
      Incident inc;
      inc.binary = label;
      inc.phase = phase;
      inc.detail = detail;
      inc.status = status;
      if (events.enabled()) EmitIncident(events, inc);
      out.incidents.push_back(inc);
      DTAINT_LOG(obs::LogLevel::kWarn, "corpus", "%s",
                 out.incidents.back().ToString().c_str());
    };
    auto finish_image = [&]() {
      if (events.enabled()) {
        events.Emit(
            obs::Event("image_end")
                .Str("image", label)
                .Str("status", out.status)
                .Bool("complete", out.complete)
                .Num("functions", out.functions)
                .Num("findings", out.findings)
                .Double("duration_ms", image_watch.Seconds() * 1e3));
      }
    };

    auto extracted = FirmwareExtractor::Extract(item.blob, label);
    if (!extracted.ok()) {
      // Vendor encryption / unknown compression is the corpus's
      // expected attrition (Unsupported); anything else is an incident.
      if (extracted.status().code() == StatusCode::kUnsupported) {
        out.status = "unextractable";
        out.row = "unextractable";
      } else {
        out.status = "failed";
        out.row = "FAILED: extract";
        record_incident("extract", label, extracted.status());
      }
      finish_image();
      return out;
    }
    const FirmwareFile* file =
        extracted->image.FindFile(item.spec.binary_path);
    if (!file) {
      out.status = "failed";
      out.row = "FAILED: no binary";
      record_incident("load", item.spec.binary_path,
                      NotFound(label + ": no " + item.spec.binary_path +
                               " in extracted image"));
      finish_image();
      return out;
    }
    auto binary =
        BinaryLoader::Load(file->bytes, label + item.spec.binary_path);
    if (!binary.ok()) {
      out.status = "failed";
      out.row = "FAILED: load";
      record_incident("load", item.spec.binary_path, binary.status());
      finish_image();
      return out;
    }
    DTaintConfig config;
    if (cache) config.interproc.cache = &*cache;
    config.interproc.num_threads = num_threads;
    config.interproc.budget = image_budget;
    config.interproc.alias_mode = alias_mode;
    DTaint detector(config);
    auto report = detector.Analyze(*binary);
    if (!report.ok()) {
      out.status = "failed";
      out.row = "FAILED: analyze";
      record_incident("analyze", binary->soname, report.status());
      finish_image();
      return out;
    }
    // Per-function incidents (lift failures, budget exhaustions) come
    // back inside the report; relabel them with the fleet label so the
    // fleet log is unambiguous across images that share a soname.
    for (Incident inc : report->incidents) {
      inc.binary = label;
      out.incidents.push_back(std::move(inc));
    }
    out.status = "ok";
    out.row = "ok";
    out.complete = report->complete;
    out.functions = report->analyzed_functions;
    out.findings = report->findings.size();
    out.findings_json = FindingsToJson(report->findings);
    DetectionScore score = ScoreFindings(report->findings, item.ground_truth);
    out.has_score = true;
    out.score_json = ScoreToJson(score);
    out.tp = score.true_positives;
    out.fn = score.false_negatives;
    out.fp = score.false_positives + score.safe_twin_hits;
    finish_image();
    return out;
  };

  // Folds one terminal task result into the fleet report. Always
  // called in corpus order, whatever order the supervisor finished in
  // — the report (and its byte-identity across resumes) never depends
  // on scheduling.
  auto fold_result = [&](size_t idx, const TaskResult& result) {
    const CorpusItem& item = corpus[idx];
    ImageResult im;
    im.label = item.spec.vendor + " " + item.spec.product;
    im.vendor = item.spec.vendor;
    im.product = item.spec.product;
    im.arch = std::string(ArchName(item.spec.program.arch));
    im.packing = std::string(PackingName(item.spec.packing));
    im.attempts = result.attempts;
    totals.retries += result.attempts > 0 ? result.attempts - 1 : 0;
    totals.worker_restarts += result.worker_restarts;

    if (result.state == TaskResult::State::kQuarantined) {
      im.status = "quarantined";
      ++totals.quarantined;
      table.AddRow({im.label, im.arch, im.packing, "QUARANTINED", "-", "-",
                    "-", "-", "-", "-", std::to_string(im.attempts)});
    } else {
      const ScanOutcome& out = result.outcome;
      im.status = out.status;
      im.complete = out.complete;
      im.functions = out.functions;
      im.finding_count = out.findings;
      im.findings_json = out.findings_json;
      im.has_score = out.has_score;
      im.score_json = out.score_json;
      if (out.status == "unextractable") ++totals.unextractable;
      if (out.status == "ok") {
        if (out.complete) {
          // Only complete images count toward the exit code: an image
          // that hit its budget legitimately under-reports, which is
          // triage work ("raise the budget"), not a detection bug.
          ++totals.complete_images;
          totals.tp += out.tp;
          totals.fn += out.fn;
          totals.fp += out.fp;
        }
        table.AddRow({im.label, im.arch, im.packing, "ok",
                      out.complete ? "yes" : "NO",
                      std::to_string(out.functions),
                      std::to_string(out.findings), std::to_string(out.tp),
                      std::to_string(out.fp), std::to_string(out.fn),
                      std::to_string(im.attempts)});
      } else {
        table.AddRow({im.label, im.arch, im.packing, out.row, "-", "-", "-",
                      "-", "-", "-", std::to_string(im.attempts)});
      }
      for (const Incident& inc : result.outcome.incidents) {
        incidents.push_back(inc);
        DTAINT_LOG(obs::LogLevel::kDebug, "corpus", "incident: %s",
                   inc.ToString().c_str());
      }
    }
    // Supervisor-level incidents (worker deaths, the quarantine
    // verdict) follow the analysis incidents of the same image.
    for (const Incident& inc : result.incidents) {
      incidents.push_back(inc);
    }
    images.push_back(std::move(im));
  };

  bool use_supervisor = isolate || journal_dir != nullptr;
  if (use_supervisor) {
    SupervisorConfig sup_config;
    sup_config.workers = workers;
    sup_config.max_retries = max_retries;
    sup_config.image_timeout_ms =
        image_timeout_ms > 0 ? static_cast<uint32_t>(image_timeout_ms) : 0;
    sup_config.mem_limit_mb =
        mem_limit_mb > 0 ? static_cast<uint32_t>(mem_limit_mb) : 0;
    sup_config.budget = budget;
    sup_config.journal_dir = journal_dir ? journal_dir : "";
    sup_config.resume = resume;
    sup_config.stop_on_failure = fail_fast;
    sup_config.force_in_process = !isolate;
    ScanSupervisor supervisor(sup_config);

    std::vector<TaskSpec> tasks;
    tasks.reserve(corpus.size());
    for (const CorpusItem& item : corpus) {
      TaskSpec task;
      task.label = item.spec.vendor + " " + item.spec.product;
      task.fingerprint = Fingerprint128()
                             .Mix(std::span<const uint8_t>(item.blob))
                             .Digest()
                             .ToHex();
      tasks.push_back(std::move(task));
    }
    std::vector<TaskResult> results = supervisor.Run(
        tasks, [&](size_t idx, const AnalysisBudget& image_budget) {
          return scan_image(idx, image_budget, /*consult_crash=*/false);
        });
    for (size_t i = 0; i < results.size(); ++i) {
      const TaskResult& result = results[i];
      if (result.state == TaskResult::State::kSkipped) {
        // Mirrors the in-process --fail-fast break: images the stop
        // cut off never appear in the report, but any incidents their
        // earlier attempts produced do.
        aborted = true;
        for (const Incident& inc : result.incidents) {
          incidents.push_back(inc);
        }
        continue;
      }
      fold_result(i, result);
      heartbeat.images_done().fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    for (size_t idx = 0; idx < corpus.size(); ++idx) {
      TaskResult result;
      result.state = TaskResult::State::kDone;
      result.attempts = 1;
      result.in_process = true;
      result.outcome = scan_image(idx, budget, /*consult_crash=*/true);
      fold_result(idx, result);
      heartbeat.images_done().fetch_add(1, std::memory_order_relaxed);
      const ScanOutcome& out = result.outcome;
      if (fail_fast && (out.status == "failed" ||
                        (out.status == "ok" && !out.complete))) {
        aborted = true;
        break;
      }
    }
  }
  heartbeat.Stop();
  if (events.enabled()) {
    events.Emit(obs::Event("corpus_end")
                    .Num("images", static_cast<uint64_t>(corpus.size()))
                    .Num("complete",
                         static_cast<uint64_t>(totals.complete_images))
                    .Num("unextractable",
                         static_cast<uint64_t>(totals.unextractable))
                    .Num("incidents",
                         static_cast<uint64_t>(incidents.size()))
                    .Bool("aborted", aborted));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("fleet totals (over %zu complete image(s)): TP=%zu FN=%zu "
              "FP=%zu; %zu image(s) resisted extraction (vendor "
              "encryption), as in the paper's corpus study; %zu "
              "incident(s)\n",
              totals.complete_images, totals.tp, totals.fn, totals.fp,
              totals.unextractable, incidents.size());
  if (totals.quarantined || totals.retries) {
    std::printf("supervisor: %zu image(s) quarantined, %zu retry(ies), "
                "%zu worker restart(s)\n",
                totals.quarantined, totals.retries, totals.worker_restarts);
  }
  for (const Incident& inc : incidents) {
    std::printf("  incident: %s\n", inc.ToString().c_str());
  }

  // Detection quality is scored over complete images only; incidents
  // are reported, not fatal (the whole point of the resilience layer).
  // --fail-fast flips that contract for CI gating. Quarantined images
  // never fail the run by themselves — like budget-degraded images,
  // they are triage work, and their ground truth is excluded from the
  // score the same way an unextractable image's is.
  int rc = (totals.fn == 0 && totals.fp == 0) ? 0 : 1;
  if (fail_fast && (aborted || !incidents.empty())) rc = 1;
  if (json_out) {
    std::ofstream out(json_out, std::ios::trunc);
    out << FleetToJson(images, incidents, totals) << '\n';
    if (!out.good()) {
      DTAINT_LOG(obs::LogLevel::kError, "corpus",
                 "cannot write fleet report to %s", json_out);
      if (rc == 0) rc = 1;
    }
  }
  if (trace_out && !obs::Tracer::Global().FinishStream()) {
    DTAINT_LOG(obs::LogLevel::kError, "corpus", "cannot finish trace at %s",
               trace_out);
    if (rc == 0) rc = 1;
  }
  if (metrics_out) {
    std::ofstream out(metrics_out, std::ios::trunc);
    out << obs::MetricsRegistry::Global().ToJson() << '\n';
    if (!out.good()) {
      DTAINT_LOG(obs::LogLevel::kError, "corpus",
                 "cannot write metrics to %s", metrics_out);
      if (rc == 0) rc = 1;
    }
  }
  events.Close(aborted ? "aborted" : "ok");
  return rc;
}
