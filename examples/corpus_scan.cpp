// corpus_scan: batch-audits a fleet of firmware images — the
// large-scale use case (the paper crawls 6,529 vendor images).
//
// Synthesizes a mixed corpus (several vendors/architectures, some
// encrypted images that resist extraction, varying vulnerability
// load), then runs the whole pipeline over each and prints a fleet
// report: per image the extraction outcome and findings, then vendor
// aggregates and precision/recall over the planted ground truth.
//
// With `--cache-dir DIR`, one persistent function-summary cache is
// shared across the whole fleet: identical functions in different
// images (and the whole fleet on a re-run) are analyzed once.
//
// `--threads N` runs each image's intraprocedural summary phase on N
// worker threads (profitable on multi-core hosts now that expressions
// are hash-consed; results are identical for any thread count).
//
// Observability: `--log-level LEVEL` sets the stderr log threshold,
// `--trace-out FILE` records a fleet-wide Chrome trace (one "binary"
// span per image), `--metrics-out FILE` dumps the metrics registry.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>

#include "src/binary/loader.h"
#include "src/cache/summary_cache.h"
#include "src/core/dtaint.h"
#include "src/firmware/extractor.h"
#include "src/firmware/packer.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/report/scoring.h"
#include "src/report/table.h"
#include "src/synth/firmware_synth.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

struct CorpusItem {
  FirmwareSpec spec;
  std::vector<uint8_t> blob;
  std::vector<PlantedVuln> ground_truth;
};

std::vector<CorpusItem> BuildCorpus() {
  struct VendorPlan {
    const char* vendor;
    const char* product;
    Arch arch;
    Packing packing;
    int vulns;
    int safes;
  };
  const VendorPlan plans[] = {
      {"D-Link", "DIR-505", Arch::kDtMips, Packing::kPlain, 2, 1},
      {"D-Link", "DIR-868L", Arch::kDtArm, Packing::kXor, 1, 1},
      {"Netgear", "R7000", Arch::kDtArm, Packing::kPlain, 2, 2},
      {"Netgear", "WNR2000", Arch::kDtMips, Packing::kEncrypted, 1, 0},
      {"Tenda", "AC15", Arch::kDtArm, Packing::kPlain, 3, 1},
      {"TP-Link", "WR841N", Arch::kDtMips, Packing::kXor, 0, 2},
      {"Foscam", "C1", Arch::kDtArm, Packing::kUnknown, 2, 0},
      {"Zyxel", "NBG6817", Arch::kDtMips, Packing::kPlain, 1, 1},
  };
  const VulnPattern patterns[] = {
      VulnPattern::kDirect, VulnPattern::kWrapper, VulnPattern::kAliasChain,
      VulnPattern::kLoopCopy, VulnPattern::kDispatch};
  const std::pair<const char*, const char*> combos[] = {
      {"getenv", "system"}, {"recv", "strcpy"},  {"read", "memcpy"},
      {"websGetVar", "system"}, {"recv", "loop"}, {"recv", "memcpy"},
  };

  Rng rng(20260704);
  std::vector<CorpusItem> corpus;
  int seq = 0;
  for (const VendorPlan& plan : plans) {
    CorpusItem item;
    item.spec.vendor = plan.vendor;
    item.spec.product = plan.product;
    item.spec.version = "1." + std::to_string(rng.Below(9));
    item.spec.release_year = static_cast<uint16_t>(rng.Range(2012, 2016));
    item.spec.packing = plan.packing;
    item.spec.binary_path = "/bin/httpd";
    item.spec.program.name = "httpd";
    item.spec.program.arch = plan.arch;
    item.spec.program.seed = 9000 + seq;
    item.spec.program.filler_functions =
        static_cast<int>(rng.Range(30, 90));
    for (int v = 0; v < plan.vulns + plan.safes; ++v) {
      PlantSpec p;
      p.id = std::string(plan.product) + "_p" + std::to_string(v);
      size_t pi = rng.Below(std::size(patterns));
      p.pattern = patterns[pi];
      // Loop/dispatch need buffer sources; pick compatible combos.
      size_t ci = p.pattern == VulnPattern::kLoopCopy
                      ? 4
                      : (p.pattern == VulnPattern::kDispatch
                             ? 5
                             : rng.Below(4));
      p.source = combos[ci].first;
      p.sink = p.pattern == VulnPattern::kLoopCopy ? "loop"
                                                   : combos[ci].second;
      p.sanitized = v >= plan.vulns;
      item.spec.program.plants.push_back(std::move(p));
    }
    auto fw = SynthesizeFirmware(item.spec);
    if (!fw.ok()) continue;
    item.blob = FirmwarePacker::Pack(fw->image);
    item.ground_truth = std::move(fw->ground_truth);
    corpus.push_back(std::move(item));
    ++seq;
  }
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<SummaryCache> cache;
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  int num_threads = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      num_threads = atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      CacheConfig cache_config;
      cache_config.disk_dir = argv[i + 1];
      cache.emplace(cache_config);
    } else if (std::strcmp(argv[i], "--log-level") == 0) {
      obs::LogLevel level;
      if (!obs::ParseLogLevel(argv[i + 1], &level)) {
        std::fprintf(stderr, "bad --log-level: %s\n", argv[i + 1]);
        return 2;
      }
      obs::SetLogLevel(level);
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out = argv[i + 1];
    }
  }
  if (trace_out) obs::Tracer::Global().Start();

  std::vector<CorpusItem> corpus = BuildCorpus();
  std::printf("fleet scan: %zu firmware images%s\n\n", corpus.size(),
              cache ? " (summary cache enabled)" : "");

  TextTable table({"Image", "Arch", "Packing", "Extraction", "Fns",
                   "Findings", "TP", "FP+twin", "Missed"});
  size_t fleet_tp = 0, fleet_fn = 0, fleet_fp = 0, unextractable = 0;

  for (const CorpusItem& item : corpus) {
    std::string label = item.spec.vendor + " " + item.spec.product;
    auto extracted = FirmwareExtractor::Extract(item.blob);
    if (!extracted.ok()) {
      ++unextractable;
      table.AddRow({label,
                    std::string(ArchName(item.spec.program.arch)),
                    std::string(PackingName(item.spec.packing)),
                    "FAILED: " + std::string(StatusCodeName(
                        extracted.status().code())),
                    "-", "-", "-", "-", "-"});
      continue;
    }
    const FirmwareFile* file =
        extracted->image.FindFile(item.spec.binary_path);
    auto binary = BinaryLoader::Load(file->bytes);
    if (!binary.ok()) {
      DTAINT_LOG(obs::LogLevel::kWarn, "corpus", "%s: load failed: %s",
                 label.c_str(), binary.status().ToString().c_str());
      continue;
    }
    DTaintConfig config;
    if (cache) config.interproc.cache = &*cache;
    config.interproc.num_threads = num_threads;
    DTaint detector(config);
    auto report = detector.Analyze(*binary);
    if (!report.ok()) {
      DTAINT_LOG(obs::LogLevel::kWarn, "corpus", "%s: analysis failed: %s",
                 label.c_str(), report.status().ToString().c_str());
      continue;
    }
    DetectionScore score =
        ScoreFindings(report->findings, item.ground_truth);
    fleet_tp += score.true_positives;
    fleet_fn += score.false_negatives;
    fleet_fp += score.false_positives + score.safe_twin_hits;
    table.AddRow({label, std::string(ArchName(binary->arch)),
                  std::string(PackingName(item.spec.packing)), "ok",
                  std::to_string(report->analyzed_functions),
                  std::to_string(report->findings.size()),
                  std::to_string(score.true_positives),
                  std::to_string(score.false_positives +
                                 score.safe_twin_hits),
                  std::to_string(score.false_negatives)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("fleet totals: TP=%zu FN=%zu FP=%zu; %zu image(s) resisted "
              "extraction (vendor encryption), as in the paper's corpus "
              "study\n",
              fleet_tp, fleet_fn, fleet_fp, unextractable);

  int rc = (fleet_fn == 0 && fleet_fp == 0) ? 0 : 1;
  if (trace_out) {
    obs::Tracer::Global().Stop();
    if (!obs::Tracer::Global().WriteChromeJson(trace_out)) {
      DTAINT_LOG(obs::LogLevel::kError, "corpus", "cannot write trace to %s",
                 trace_out);
      if (rc == 0) rc = 1;
    }
  }
  if (metrics_out) {
    std::ofstream out(metrics_out, std::ios::trunc);
    out << obs::MetricsRegistry::Global().ToJson() << '\n';
    if (!out.good()) {
      DTAINT_LOG(obs::LogLevel::kError, "corpus",
                 "cannot write metrics to %s", metrics_out);
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
