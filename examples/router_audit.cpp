// router_audit: the full firmware-security workflow on one image —
// the scenario the paper's introduction motivates.
//
//   vendor blob -> binwalk-like extraction -> pick the CGI binary ->
//   DTaint -> vulnerability report with source/sink paths.
//
// The image is a synthesized D-Link-style router firmware carrying a
// command injection, a stack overflow, and their sanitized twins.
#include <cstdio>

#include "src/binary/loader.h"
#include "src/core/dtaint.h"
#include "src/firmware/extractor.h"
#include "src/firmware/packer.h"
#include "src/synth/firmware_synth.h"
#include "src/util/strings.h"

using namespace dtaint;

int main() {
  // -- 0. "Download" the vendor firmware ------------------------------------
  FirmwareSpec spec;
  spec.vendor = "D-Link";
  spec.product = "DIR-823G";
  spec.version = "1.02";
  spec.release_year = 2016;
  spec.packing = Packing::kXor;  // vendor obfuscation binwalk can undo
  spec.binary_path = "/htdocs/web/cgibin";
  spec.program.name = "cgibin";
  spec.program.arch = Arch::kDtMips;
  spec.program.seed = 823;
  spec.program.filler_functions = 60;
  auto plant = [](const char* id, VulnPattern pattern, const char* source,
                  const char* sink, bool sanitized = false) {
    PlantSpec p;
    p.id = id;
    p.pattern = pattern;
    p.source = source;
    p.sink = sink;
    p.sanitized = sanitized;
    return p;
  };
  spec.program.plants = {
      plant("soap_cmdinj", VulnPattern::kDirect, "getenv", "system"),
      plant("cookie_overflow", VulnPattern::kWrapper, "getenv", "strcpy"),
      plant("checked_cmd", VulnPattern::kDirect, "getenv", "system", true),
      plant("checked_copy", VulnPattern::kDirect, "getenv", "strcpy", true),
  };
  auto fw = SynthesizeFirmware(spec);
  if (!fw.ok()) {
    std::printf("synthesis failed: %s\n", fw.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> blob = FirmwarePacker::Pack(fw->image);
  std::printf("firmware blob: %s %s v%s, %zu bytes (packing: %s)\n",
              spec.vendor.c_str(), spec.product.c_str(),
              spec.version.c_str(), blob.size(),
              std::string(PackingName(spec.packing)).c_str());

  // -- 1. Extract the root filesystem ---------------------------------------
  auto extracted = FirmwareExtractor::Extract(blob);
  if (!extracted.ok()) {
    std::printf("extraction failed: %s\n",
                extracted.status().ToString().c_str());
    return 1;
  }
  std::printf("\nextracted rootfs (%zu files):\n",
              extracted->image.files.size());
  for (const FirmwareFile& file : extracted->image.files) {
    std::printf("  %-24s %6zu bytes%s\n", file.path.c_str(),
                file.bytes.size(),
                BinaryLoader::LooksLikeBinary(file.bytes) ? "  [executable]"
                                                          : "");
  }

  // -- 2. Load the binary of interest ---------------------------------------
  if (extracted->executable_paths.empty()) {
    std::printf("no executables found\n");
    return 1;
  }
  const FirmwareFile* target =
      extracted->image.FindFile(extracted->executable_paths[0]);
  auto binary = BinaryLoader::Load(target->bytes);
  if (!binary.ok()) {
    std::printf("load failed: %s\n", binary.status().ToString().c_str());
    return 1;
  }
  std::printf("\nloaded %s (%s): %zu functions, %zu imports\n",
              binary->soname.c_str(),
              std::string(ArchName(binary->arch)).c_str(),
              binary->symbols.size(), binary->imports.size());

  // -- 3. Run DTaint ----------------------------------------------------------
  DTaint detector;
  auto report = detector.Analyze(*binary);
  if (!report.ok()) {
    std::printf("analysis failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }
  std::printf("\nanalysis: %zu functions, %zu blocks, %zu call edges, "
              "%zu sink callsites, %.2fs\n",
              report->analyzed_functions, report->blocks,
              report->call_graph_edges, report->sink_count,
              report->total_seconds);
  std::printf("\n%zu vulnerable path(s):\n", report->findings.size());
  for (size_t i = 0; i < report->findings.size(); ++i) {
    const Finding& finding = report->findings[i];
    std::printf("\n[%zu] %s\n", i + 1, finding.Summary().c_str());
    for (const PathHop& hop : finding.path.hops) {
      std::printf("      %-20s %s  %s\n", hop.function.c_str(),
                  HexStr(hop.site).c_str(), hop.note.c_str());
    }
  }
  std::printf("\n(2 planted bugs, 2 sanitized twins -> expect exactly the "
              "2 bugs above)\n");
  return report->findings.size() == 2 ? 0 : 1;
}
