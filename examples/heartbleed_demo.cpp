// heartbleed_demo: the paper's running example (Figures 2-3) rebuilt
// on DT-RISC and caught by DTaint.
//
// The CVE-2014-0160 data flow the paper narrates:
//   * ssl3_read_n reads TLS record bytes from the network into a
//     buffer whose pointer is parked in a field of the SSL context
//     struct (s->s3->rbuf at offset 0x4C in our model);
//   * tls1_process_heartbeat pulls the record pointer back out of the
//     struct (the *alias name*), reads the attacker's 16-bit payload
//     length out of the record (the inlined n2s macro), and calls
//     memcpy with that unchecked length — leaking heap memory.
//
// At the binary level the n2s source is invisible (inlined) and the
// buffer travels through a struct field, which is exactly why the
// paper says off-the-shelf static taint tools miss it. DTaint's
// alias recognition + bottom-up summaries connect the dots.
#include <cstdio>

#include "src/dtaint.h"
#include "src/util/strings.h"

using namespace dtaint;

int main() {
  BinaryWriter writer(Arch::kDtArm, "libssl_demo");
  writer.AddImport("recv");
  writer.AddImport("memcpy");

  // ssl3_read_n(s, n): read record bytes; park the record pointer in
  // s->rbuf (offset 0x4C), like the STR into [R4,#0x118] at 0x68148.
  {
    FnBuilder b("ssl3_read_n");  // arg0 = s, arg1 = rrec
    b.LdrW(5, 1, 0x24);          // r5 = rrec->data
    b.StrW(5, 0, 0x4C);          // s->rbuf = r5   (the alias store)
    b.MovI(0, 3);                // fd
    b.MovR(1, 5);
    b.MovI(2, 0x200);
    b.Call("recv");              // network bytes land in *r5
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  // tls1_process_heartbeat(s, rrec): read payload length out of the
  // record (the inlined n2s) and memcpy that many bytes.
  {
    FnBuilder b("tls1_process_heartbeat");  // arg0 = s
    b.SubI(13, 13, 0x118);
    b.MovR(7, 0);            // keep s
    b.Call("ssl3_read_n");
    b.LdrW(4, 7, 0x4C);      // p = s->rbuf (via the alias name)
    b.LdrB(5, 4, 1);         // n2s: payload length hi byte...
    b.LslI(5, 5, 8);
    b.LdrB(6, 4, 2);         //      ...lo byte
    b.OrrR(5, 5, 6);         // payload = (p[1] << 8) | p[2]
    b.AddI(0, 13, 0x18);     // bp (response buffer on the stack)
    b.AddI(1, 4, 3);         // pl = p + 3
    b.MovR(2, 5);            // n = payload  -- NO bounds check
    b.Call("memcpy");        // <-- Heartbleed
    b.AddI(13, 13, 0x118);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  // A patched twin with OpenSSL's actual fix shape:
  // if (1 + 2 + payload + 16 > s->s3->rrec.length) return;  — modeled
  // as a bound on the payload before the copy.
  {
    FnBuilder b("tls1_process_heartbeat_patched");
    b.SubI(13, 13, 0x118);
    b.MovR(7, 0);
    b.Call("ssl3_read_n");
    b.LdrW(4, 7, 0x4C);
    b.LdrB(5, 4, 1);
    b.LslI(5, 5, 8);
    b.LdrB(6, 4, 2);
    b.OrrR(5, 5, 6);
    b.LdrW(8, 7, 0x50);      // record length field
    b.CmpR(5, 8);            // payload >= length? discard.
    b.Bge("silently_discard");
    b.AddI(0, 13, 0x18);
    b.AddI(1, 4, 3);
    b.MovR(2, 5);
    b.Call("memcpy");
    b.Label("silently_discard");
    b.AddI(13, 13, 0x118);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("ssl3_read_bytes");
    b.SubI(13, 13, 0x40);
    b.AddI(1, 13, 0x10);     // rrec on the caller's frame
    b.Call("tls1_process_heartbeat");
    b.AddI(1, 13, 0x10);
    b.Call("tls1_process_heartbeat_patched");
    b.AddI(13, 13, 0x40);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  writer.SetEntry("ssl3_read_bytes");
  Binary binary = writer.Build().value();

  std::printf("libssl_demo: %zu functions (DT-RISC model of the "
              "paper's Fig. 3 flow)\n\n",
              binary.symbols.size());

  DTaint detector;
  AnalysisReport report = detector.Analyze(binary).value();
  for (const Finding& finding : report.findings) {
    std::printf("FINDING: %s\n", finding.Summary().c_str());
    for (const PathHop& hop : finding.path.hops) {
      std::printf("  [%s @%s] %s\n", hop.function.c_str(),
                  HexStr(hop.site).c_str(), hop.note.c_str());
    }
    std::printf("\n");
  }

  bool vulnerable_found = false, patched_flagged = false;
  for (const Finding& finding : report.findings) {
    if (finding.path.sink_function == "tls1_process_heartbeat") {
      vulnerable_found = true;
    }
    if (finding.path.sink_function == "tls1_process_heartbeat_patched") {
      patched_flagged = true;
    }
  }
  if (vulnerable_found && !patched_flagged) {
    std::printf("OK: Heartbleed detected; the patched handler is "
                "clean.\n");
    std::printf("(The paper: \"the state-of-the-art static taint "
                "analysis cannot detect Heartbleed\n weakness at the "
                "binary code level\" — the alias store at ssl3_read_n "
                "plus the\n bottom-up summary makes the flow visible "
                "here.)\n");
    return 0;
  }
  std::printf("UNEXPECTED RESULT (vulnerable=%d patched_flagged=%d)\n",
              vulnerable_found, patched_flagged);
  return 1;
}
