// Quickstart: author a tiny vulnerable "firmware binary" by hand with
// the assembler API, run DTaint over it, and print the findings.
//
// The program is the paper's running example in miniature: an HTTP
// handler that getenv()s an attacker-controlled header and passes it
// to system() without filtering — the CVE-2015-2051 shape.
#include <cstdio>

#include "src/binary/writer.h"
#include "src/core/dtaint.h"
#include "src/ir/printer.h"
#include "src/isa/asm_builder.h"

using namespace dtaint;

int main() {
  // -- 1. Author a binary ---------------------------------------------------
  BinaryWriter writer(Arch::kDtArm, "demo_cgi");
  writer.AddImport("getenv");
  writer.AddImport("system");
  writer.AddImport("strlen");

  // .rodata: the header name we "read".
  uint32_t soap = kRodataBase + writer.AddRodata(
      {'S', 'O', 'A', 'P', 'A', 'c', 't', 'i', 'o', 'n', 0});

  {
    // Vulnerable: system(getenv("SOAPAction")) with no filtering.
    FnBuilder b("soap_handler");
    b.SubI(kRegSp, kRegSp, 0x40);
    b.MovConst(0, soap);      // r0 = "SOAPAction"
    b.Call("getenv");         // r0 = attacker-controlled string
    b.MovR(4, 0);             // r4 = cmd
    b.MovR(0, 4);
    b.Call("system");         // boom
    b.AddI(kRegSp, kRegSp, 0x40);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    // Safe twin: scans for ';' before invoking the shell.
    FnBuilder b("soap_handler_safe");
    b.SubI(kRegSp, kRegSp, 0x40);
    b.MovConst(0, soap);
    b.Call("getenv");
    b.MovR(4, 0);
    b.MovI(5, 0);
    b.Label("scan");
    b.LdrBR(6, 4, 5);         // c = cmd[i]
    b.CmpI(6, 0x3B);          // ';' ?
    b.Beq("reject");
    b.AddI(5, 5, 1);
    b.CmpI(6, 0);
    b.Bne("scan");
    b.MovR(0, 4);
    b.Call("system");
    b.Label("reject");
    b.AddI(kRegSp, kRegSp, 0x40);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  {
    FnBuilder b("main");
    b.Call("soap_handler");
    b.Call("soap_handler_safe");
    b.MovI(0, 0);
    b.Ret();
    writer.AddFunction(std::move(b).Finish().value());
  }
  writer.SetEntry("main");
  Binary binary = writer.Build().value();
  std::printf("built %s: %zu functions, %llu mapped bytes\n\n",
              binary.soname.c_str(), binary.symbols.size(),
              static_cast<unsigned long long>(binary.MappedSize()));

  // -- 2. Peek at the lifted IR of the vulnerable handler -------------------
  CfgBuilder cfg(binary);
  Program program = cfg.BuildProgram().value();
  const Function& handler = program.functions.at("soap_handler");
  std::printf("soap_handler lifts to %zu basic blocks; first block:\n",
              handler.blocks.size());
  std::printf("%s\n",
              PrintBlockWithDisasm(binary, handler.blocks.begin()->second)
                  .c_str());

  // -- 3. Run DTaint ---------------------------------------------------------
  DTaint detector;
  AnalysisReport report = detector.Analyze(binary).value();
  std::printf("analysis: %zu functions, %zu blocks, %zu sinks, "
              "%zu vulnerable paths\n",
              report.analyzed_functions, report.blocks, report.sink_count,
              report.vulnerable_paths);
  for (const Finding& finding : report.findings) {
    std::printf("  FINDING: %s\n", finding.Summary().c_str());
    for (const PathHop& hop : finding.path.hops) {
      std::printf("    - [%s @0x%x] %s\n", hop.function.c_str(), hop.site,
                  hop.note.c_str());
    }
  }
  if (report.findings.size() == 1 &&
      report.findings[0].path.sink_function == "soap_handler") {
    std::printf("\nOK: the vulnerable handler was flagged and the "
                "sanitized twin was not.\n");
    return 0;
  }
  std::printf("\nUNEXPECTED RESULT\n");
  return 1;
}
