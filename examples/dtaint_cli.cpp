// dtaint_cli: a command-line front end over the library, operating on
// files — the shape of tool a firmware-security team would actually
// run in CI.
//
//   dtaint_cli synth <out.dtfw> [--arch arm|mips] [--seed N]
//              [--vulns K] [--safe K] [--packing plain|xor|encrypted]
//   dtaint_cli extract <image.dtfw>
//   dtaint_cli inspect <image.dtfw> [function]
//   dtaint_cli scan <image.dtfw> [--json] [--no-alias]
//              [--alias-mode eager|ondemand] [--no-structsim]
//              [--threads N] [--cache-dir DIR]
//              [--deadline-ms MS] [--max-steps N] [--max-states N]
//              [--max-expr-nodes N] [--fail-fast]
//
// --alias-mode selects how pointer aliases are recognized: "eager"
// (the paper's Algorithm 1, summaries rewritten up front) or
// "ondemand" (lazy SSE comparison against linked summaries, which
// also resolves indirect calls through cross-call registration
// stores). Summaries cache separately per mode, so switching modes
// against the same --cache-dir is safe.
//
// Budget flags bound per-function analysis effort (0 = unlimited); a
// function that exhausts its budget degrades to a conservative summary
// and the scan continues, flagging the report "complete": false.
// --fail-fast makes an incomplete analysis exit nonzero (exit 4), for
// CI jobs that want "no findings" to actually mean "nothing found".
//
// Observability flags (accepted by every command):
//   --log-level error|warn|info|debug   stderr log threshold (warn)
//   --trace-out FILE    streamed Chrome trace of the pipeline's spans
//                       (JSON Array Format, crash-tolerant: append `]`
//                       to recover a killed run's file; loads in
//                       chrome://tracing or Perfetto)
//   --metrics-out FILE  metrics-registry snapshot as JSON
//   --events-out FILE   NDJSON scan event stream (schema v1, see
//                       src/obs/events.h); a flight-recorder dump of
//                       the most recent events lands next to it at
//                       FILE.flight.ndjson on incident or fatal
//                       signal. Aggregate with tools/scan_report.
//
// --cache-dir enables the persistent function-summary cache: summaries
// are stored content-addressed under DIR and re-used by later scans of
// unchanged functions (identical findings, much faster re-scan).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/binary/loader.h"
#include "src/cache/summary_cache.h"
#include "src/core/dtaint.h"
#include "src/firmware/extractor.h"
#include "src/firmware/packer.h"
#include "src/ir/printer.h"
#include "src/obs/events.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/report/json.h"
#include "src/symexec/symstate.h"
#include "src/synth/firmware_synth.h"
#include "src/util/strings.h"

using namespace dtaint;

namespace {

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int CmdSynth(int argc, char** argv) {
  if (argc < 1) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "synth: missing output path");
    return 2;
  }
  FirmwareSpec spec;
  spec.vendor = "Acme";
  spec.product = "RT-9000";
  spec.version = "1.0";
  spec.binary_path = "/bin/httpd";
  spec.program.name = "httpd";
  spec.program.filler_functions = 80;
  if (const char* arch = FlagValue(argc, argv, "--arch")) {
    spec.program.arch =
        std::strcmp(arch, "mips") == 0 ? Arch::kDtMips : Arch::kDtArm;
  }
  if (const char* seed = FlagValue(argc, argv, "--seed")) {
    spec.program.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* packing = FlagValue(argc, argv, "--packing")) {
    if (std::strcmp(packing, "xor") == 0) spec.packing = Packing::kXor;
    if (std::strcmp(packing, "encrypted") == 0) {
      spec.packing = Packing::kEncrypted;
    }
  }
  int vulns = 2, safe = 1;
  if (const char* v = FlagValue(argc, argv, "--vulns")) vulns = atoi(v);
  if (const char* s = FlagValue(argc, argv, "--safe")) safe = atoi(s);

  const VulnPattern patterns[] = {
      VulnPattern::kDirect, VulnPattern::kWrapper, VulnPattern::kAliasChain,
      VulnPattern::kLoopCopy, VulnPattern::kDispatch};
  for (int i = 0; i < vulns + safe; ++i) {
    PlantSpec p;
    p.id = "plant" + std::to_string(i);
    p.pattern = patterns[i % 5];
    switch (p.pattern) {
      case VulnPattern::kLoopCopy:
        p.source = "recv";
        p.sink = "loop";
        break;
      case VulnPattern::kDispatch:
        p.source = "recv";
        p.sink = "memcpy";
        break;
      case VulnPattern::kAliasChain:
        p.source = "recv";
        p.sink = "strcpy";
        break;
      default:
        p.source = i % 2 ? "getenv" : "recv";
        p.sink = i % 2 ? "system" : "memcpy";
    }
    p.sanitized = i >= vulns;
    spec.program.plants.push_back(std::move(p));
  }

  auto fw = SynthesizeFirmware(spec);
  if (!fw.ok()) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "synth failed: %s",
               fw.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> blob = FirmwarePacker::Pack(fw->image);
  if (!WriteFile(argv[0], blob)) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "cannot write %s", argv[0]);
    return 1;
  }
  std::printf("wrote %s: %zu bytes, %d vulnerable + %d sanitized "
              "plants, packing=%s\n",
              argv[0], blob.size(), vulns, safe,
              std::string(PackingName(spec.packing)).c_str());
  return 0;
}

Result<Binary> LoadFirstBinary(const std::string& path,
                               bool print_rootfs = false) {
  std::vector<uint8_t> blob = ReadFile(path);
  if (blob.empty()) return NotFound("cannot read " + path);
  // Accept either a firmware image or a bare DTBIN binary.
  if (BinaryLoader::LooksLikeBinary(blob)) {
    return BinaryLoader::Load(blob, path);
  }
  auto extracted = FirmwareExtractor::Extract(blob, path);
  if (!extracted.ok()) return extracted.status();
  if (print_rootfs) {
    std::printf("%s %s v%s (%u), %zu files:\n",
                extracted->image.vendor.c_str(),
                extracted->image.product.c_str(),
                extracted->image.version.c_str(),
                extracted->image.release_year,
                extracted->image.files.size());
    for (const FirmwareFile& f : extracted->image.files) {
      std::printf("  %-26s %7zu bytes%s\n", f.path.c_str(), f.bytes.size(),
                  BinaryLoader::LooksLikeBinary(f.bytes)
                      ? "  [executable]"
                      : "");
    }
  }
  if (extracted->executable_paths.empty()) {
    return NotFound(path + ": no executables in image");
  }
  const std::string& exec_path = extracted->executable_paths[0];
  return BinaryLoader::Load(extracted->image.FindFile(exec_path)->bytes,
                            path + ":" + exec_path);
}

int CmdExtract(int argc, char** argv) {
  if (argc < 1) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "extract: missing image path");
    return 2;
  }
  auto binary = LoadFirstBinary(argv[0], /*print_rootfs=*/true);
  if (!binary.ok()) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "extract failed: %s",
               binary.status().ToString().c_str());
    return 1;
  }
  return 0;
}

int CmdInspect(int argc, char** argv) {
  if (argc < 1) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "inspect: missing image path");
    return 2;
  }
  auto binary = LoadFirstBinary(argv[0]);
  if (!binary.ok()) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "inspect failed: %s",
               binary.status().ToString().c_str());
    return 1;
  }
  CfgBuilder builder(*binary);
  auto program = builder.BuildProgram();
  if (!program.ok()) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "cfg failed: %s",
               program.status().ToString().c_str());
    return 1;
  }
  std::printf("%s (%s): %zu functions, %zu blocks, %zu call edges, "
              "%zu imports\n",
              binary->soname.c_str(),
              std::string(ArchName(binary->arch)).c_str(),
              program->functions.size(), program->TotalBlocks(),
              program->CallEdgeCount(), binary->imports.size());
  if (argc >= 2) {
    const Function* fn = program->FindFunction(argv[1]);
    if (!fn) {
      DTAINT_LOG(obs::LogLevel::kError, "cli", "no such function: %s",
                 argv[1]);
      return 1;
    }
    std::printf("\n%s @ %s, %zu blocks:\n\n", fn->name.c_str(),
                HexStr(fn->addr).c_str(), fn->blocks.size());
    for (const auto& [addr, block] : fn->blocks) {
      std::printf("%s", PrintBlockWithDisasm(*binary, block).c_str());
    }
    if (HasFlag(argc, argv, "--summary")) {
      SymEngine engine(*binary);
      std::printf("\n%s", SummaryToString(engine.Analyze(*fn)).c_str());
    }
  } else {
    std::printf("functions:\n");
    int shown = 0;
    for (const auto& [name, fn] : program->functions) {
      std::printf("  %s  %-28s %3zu blocks, %2zu calls\n",
                  HexStr(fn.addr).c_str(), name.c_str(),
                  fn.blocks.size(), fn.callsites.size());
      if (++shown == 40) {
        std::printf("  ... (%zu more)\n", program->functions.size() - 40);
        break;
      }
    }
  }
  return 0;
}

int CmdScan(int argc, char** argv) {
  if (argc < 1) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "scan: missing image path");
    return 2;
  }
  auto binary = LoadFirstBinary(argv[0]);
  if (!binary.ok()) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "scan failed: %s",
               binary.status().ToString().c_str());
    return 1;
  }
  DTaintConfig config;
  config.enable_alias = !HasFlag(argc, argv, "--no-alias");
  config.enable_structsim = !HasFlag(argc, argv, "--no-structsim");
  // Escape hatch: run exploration on the legacy deep-copying symbolic
  // state (reports are byte-identical either way — the differential
  // oracle pins it; this exists for A/B timing and bisection).
  if (HasFlag(argc, argv, "--legacy-state")) SetStateCow(false);
  if (const char* mode = FlagValue(argc, argv, "--alias-mode")) {
    if (!ParseAliasMode(mode, &config.interproc.alias_mode)) {
      DTAINT_LOG(obs::LogLevel::kError, "cli",
                 "bad --alias-mode: %s (want eager|ondemand)", mode);
      return 2;
    }
  }
  if (const char* threads = FlagValue(argc, argv, "--threads")) {
    config.interproc.num_threads = atoi(threads);
  }
  if (const char* v = FlagValue(argc, argv, "--deadline-ms")) {
    config.interproc.budget.deadline_ms = atof(v);
  }
  if (const char* v = FlagValue(argc, argv, "--max-steps")) {
    config.interproc.budget.max_steps = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--max-states")) {
    config.interproc.budget.max_states = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--max-expr-nodes")) {
    config.interproc.budget.max_expr_nodes = std::strtoull(v, nullptr, 10);
  }
  std::optional<SummaryCache> cache;
  if (const char* dir = FlagValue(argc, argv, "--cache-dir")) {
    CacheConfig cache_config;
    cache_config.disk_dir = dir;
    cache.emplace(cache_config);
    config.interproc.cache = &*cache;
  }
  DTaint detector(config);
  auto report = detector.Analyze(*binary);
  if (!report.ok()) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "analysis failed: %s",
               report.status().ToString().c_str());
    return 1;
  }
  if (HasFlag(argc, argv, "--json")) {
    std::printf("%s\n", ReportToJson(*report).c_str());
  } else {
    std::printf("%s: %zu functions, %zu sinks, %.2fs; %zu vulnerable "
                "path(s)%s\n",
                report->binary_name.c_str(), report->analyzed_functions,
                report->sink_count, report->total_seconds,
                report->findings.size(),
                report->complete ? "" : "  [INCOMPLETE]");
    for (const Incident& inc : report->incidents) {
      std::printf("  incident: %s\n", inc.ToString().c_str());
    }
    for (size_t i = 0; i < report->findings.size(); ++i) {
      std::printf("[%zu] %s\n", i + 1,
                  report->findings[i].Summary().c_str());
      for (const PathHop& hop : report->findings[i].path.hops) {
        std::printf("     %-20s %s  %s\n", hop.function.c_str(),
                    HexStr(hop.site).c_str(), hop.note.c_str());
      }
    }
  }
  if (cache) {
    CacheStats cs = cache->stats();
    // Logged (not printed) so `--json` stdout stays machine-parseable.
    DTAINT_LOG(obs::LogLevel::kInfo, "cli",
               "summary cache: %zu hit(s), %zu miss(es), %zu from disk, "
               "%zu corrupt, %zu stored",
               cs.hits, cs.misses, cs.disk_hits, cs.corrupt_entries,
               cs.stores);
  }
  if (HasFlag(argc, argv, "--fail-fast") && !report->complete) {
    DTAINT_LOG(obs::LogLevel::kError, "cli",
               "analysis incomplete (%zu incident(s), %zu degraded "
               "function(s), %zu suppressed finding(s)) and --fail-fast set",
               report->incidents.size(), report->degraded_functions,
               report->suppressed_findings);
    return 4;
  }
  return report->findings.empty() ? 0 : 3;  // CI-friendly exit code
}

int Dispatch(int argc, char** argv) {
  std::string cmd = argv[1];
  if (cmd == "synth") return CmdSynth(argc - 2, argv + 2);
  if (cmd == "extract") return CmdExtract(argc - 2, argv + 2);
  if (cmd == "inspect") return CmdInspect(argc - 2, argv + 2);
  if (cmd == "scan") return CmdScan(argc - 2, argv + 2);
  DTAINT_LOG(obs::LogLevel::kError, "cli", "unknown command: %s",
             cmd.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dtaint_cli <synth|extract|inspect|scan> ...\n"
                 "  scan flags: [--json] [--no-alias]\n"
                 "       [--alias-mode eager|ondemand] [--no-structsim]\n"
                 "       [--threads N] [--cache-dir DIR] [--deadline-ms MS]\n"
                 "       [--max-steps N] [--max-states N]\n"
                 "       [--max-expr-nodes N] [--fail-fast]\n"
                 "       [--legacy-state]\n"
                 "  all commands:\n"
                 "       [--log-level error|warn|info|debug]\n"
                 "       [--trace-out FILE] [--metrics-out FILE]\n"
                 "       [--events-out FILE]\n");
    return 2;
  }
  if (const char* level_name = FlagValue(argc, argv, "--log-level")) {
    obs::LogLevel level;
    if (!obs::ParseLogLevel(level_name, &level)) {
      std::fprintf(stderr, "bad --log-level: %s\n", level_name);
      return 2;
    }
    obs::SetLogLevel(level);
  }
  const char* trace_out = FlagValue(argc, argv, "--trace-out");
  const char* metrics_out = FlagValue(argc, argv, "--metrics-out");
  const char* events_out = FlagValue(argc, argv, "--events-out");
  if (trace_out && !obs::Tracer::Global().StreamTo(trace_out)) {
    std::fprintf(stderr, "cannot open trace file %s\n", trace_out);
    return 2;
  }
  if (events_out &&
      !obs::EventStream::Global().Open(events_out, "dtaint_cli")) {
    std::fprintf(stderr, "cannot open event stream %s\n", events_out);
    return 2;
  }

  int rc = Dispatch(argc, argv);

  if (trace_out && !obs::Tracer::Global().FinishStream()) {
    DTAINT_LOG(obs::LogLevel::kError, "cli", "cannot finish trace at %s",
               trace_out);
    if (rc == 0) rc = 1;
  }
  if (metrics_out) {
    std::string json = obs::MetricsRegistry::Global().ToJson();
    std::ofstream out(metrics_out, std::ios::trunc);
    out << json << '\n';
    if (!out.good()) {
      DTAINT_LOG(obs::LogLevel::kError, "cli", "cannot write metrics to %s",
                 metrics_out);
      if (rc == 0) rc = 1;
    }
  }
  obs::EventStream::Global().Close(rc == 0 || rc == 3 ? "ok" : "failed");
  return rc;
}
