// emulation_study: reproduces the paper's motivating study (§II-A) as
// a library consumer would run it — generate a firmware corpus, try to
// emulate everything FIRMADYNE-style, and report why static binary
// analysis (DTaint) is the only option for most images.
#include <cstdio>

#include "src/emu/corpus.h"
#include "src/emu/firmadyne_sim.h"
#include "src/report/table.h"
#include "src/util/strings.h"

using namespace dtaint;

int main(int argc, char** argv) {
  CorpusConfig config;
  if (argc > 1) config.total_images = std::atoi(argv[1]);
  std::printf("emulation feasibility study over %d synthetic images "
              "(seed %llu)\n\n",
              config.total_images,
              static_cast<unsigned long long>(config.seed));

  std::vector<CorpusEntry> corpus = GenerateCorpus(config);
  std::map<EmulationOutcome, int> outcome_totals;
  std::map<std::string, std::pair<int, int>> by_vendor;  // total, ok
  for (const CorpusEntry& entry : corpus) {
    EmulationOutcome outcome = AttemptEmulation(entry);
    ++outcome_totals[outcome];
    auto& [total, ok] = by_vendor[entry.vendor];
    ++total;
    if (outcome == EmulationOutcome::kSuccess) ++ok;
  }

  TextTable outcomes({"Outcome", "Images", "Share"});
  for (const auto& [outcome, count] : outcome_totals) {
    outcomes.AddRow({std::string(EmulationOutcomeName(outcome)),
                     std::to_string(count),
                     FmtDouble(100.0 * count / corpus.size(), 1) + "%"});
  }
  std::printf("%s\n", outcomes.Render().c_str());

  TextTable vendors({"Vendor", "Images", "Emulable", "Rate"});
  for (const auto& [vendor, counts] : by_vendor) {
    vendors.AddRow({vendor, std::to_string(counts.first),
                    std::to_string(counts.second),
                    FmtDouble(100.0 * counts.second / counts.first, 1) +
                        "%"});
  }
  std::printf("%s\n", vendors.Render().c_str());

  int ok = outcome_totals[EmulationOutcome::kSuccess];
  std::printf("conclusion: only %d of %zu images (%.1f%%) can be "
              "dynamically analyzed;\nfor the rest, a static binary "
              "approach like DTaint is the only tool that applies.\n",
              ok, corpus.size(), 100.0 * ok / corpus.size());
  return 0;
}
