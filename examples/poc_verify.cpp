// poc_verify: the full research loop the paper describes — static
// detection followed by concrete verification ("We use real devices
// for verifying these vulnerabilities in the firmware", §V). Here the
// device is the DT-RISC VM:
//
//   1. synthesize a camera-firmware binary with planted bugs;
//   2. DTaint finds the unsanitized source->sink paths statically;
//   3. for every finding, craft an attacker payload for its sink class
//      and execute the handler in the VM;
//   4. CONFIRMED = the VM observes the exploit (saved-return-address
//      overwrite, or ';' reaching the shell); the sanitized twins must
//      survive the same payloads.
#include <cstdio>

#include "src/dtaint.h"
#include "src/util/strings.h"
#include "src/vm/vm.h"

using namespace dtaint;

namespace {

std::vector<uint8_t> PayloadFor(const TaintPath& path, Arch arch) {
  std::vector<uint8_t> bytes(0x200, 'A');
  if (path.sink_name == "memcpy" || path.sink_name == "strncpy") {
    WriteWord(arch, bytes.data() + 0, 0x600);  // huge length field
    WriteWord(arch, bytes.data() + 4, 0x600);
  } else if (path.sink_name == "loop") {
    WriteWord(arch, bytes.data() + 4, 8);      // copy start offset
  } else if (path.vuln_class == VulnClass::kCommandInjection) {
    const char* cmd = "up;cat /etc/passwd";
    for (size_t i = 0; cmd[i]; ++i) bytes[i] = uint8_t(cmd[i]);
    bytes.resize(64);
  }
  return bytes;
}

/// The VM entry driving a finding: the sink function's outermost
/// caller among the plant functions ("_entry" if present, else the
/// sink function itself).
std::string VmEntryFor(const Binary& binary, const TaintPath& path) {
  // plant ids prefix the function names: "<id>_handler" etc.
  std::string fn = path.sink_function;
  size_t underscore = fn.rfind('_');
  if (underscore != std::string::npos) {
    std::string entry = fn.substr(0, underscore) + "_entry";
    if (binary.FindSymbol(entry)) return entry;
    std::string handler = fn.substr(0, underscore) + "_handler";
    if (binary.FindSymbol(handler)) return handler;
  }
  return fn;
}

}  // namespace

int main() {
  // -- 1. a camera firmware with four bugs + two sanitized twins -----------
  ProgramSpec spec;
  spec.name = "ipcam_httpd";
  spec.arch = Arch::kDtArm;
  spec.seed = 404;
  spec.filler_functions = 50;
  auto plant = [](const char* id, VulnPattern pattern, const char* source,
                  const char* sink, bool sanitized = false) {
    PlantSpec p;
    p.id = id;
    p.pattern = pattern;
    p.source = source;
    p.sink = sink;
    p.sanitized = sanitized;
    return p;
  };
  spec.plants = {
      plant("urlparse", VulnPattern::kAliasChain, "recv", "memcpy"),
      plant("sessionid", VulnPattern::kDirect, "read", "sscanf"),
      plant("ptzcmd", VulnPattern::kWrapper, "websGetVar", "system"),
      plant("chunkcopy", VulnPattern::kLoopCopy, "recv", "loop"),
      plant("safe_copy", VulnPattern::kDirect, "recv", "memcpy", true),
      plant("safe_cmd", VulnPattern::kDirect, "getenv", "system", true),
  };
  auto out = SynthesizeBinary(spec);
  if (!out.ok()) return 1;
  std::printf("%s: %zu functions, 4 planted bugs + 2 sanitized twins\n\n",
              spec.name.c_str(), out->binary.symbols.size());

  // -- 2. static detection ----------------------------------------------------
  DTaint detector;
  auto report = detector.Analyze(out->binary);
  if (!report.ok()) return 1;
  std::printf("DTaint: %zu vulnerable paths\n\n",
              report->findings.size());

  // -- 3+4. dynamic confirmation ----------------------------------------------
  int confirmed = 0;
  for (const Finding& finding : report->findings) {
    const TaintPath& path = finding.path;
    VmConfig config;
    config.attacker_bytes = PayloadFor(path, out->binary.arch);
    Vm vm(out->binary, config);
    std::string entry = VmEntryFor(out->binary, path);
    auto result = vm.Run(entry);
    bool hit = result.ok() && (result->Smashed() || result->Injected());
    if (hit) ++confirmed;
    std::printf("%-11s %-40s -> %s\n", hit ? "CONFIRMED" : "unconfirmed",
                finding.Summary().c_str(), entry.c_str());
    if (result.ok()) {
      for (const Violation& v : result->violations) {
        std::printf("             %s @%s\n", v.detail.c_str(),
                    HexStr(v.site).c_str());
      }
    }
  }

  // The sanitized twins must survive their matching payloads.
  struct TwinCheck {
    const char* entry;
    const char* sink;
    VulnClass cls;
  };
  int twins_clean = 0;
  for (const TwinCheck& twin :
       {TwinCheck{"safe_copy_handler", "memcpy",
                  VulnClass::kBufferOverflow},
        TwinCheck{"safe_cmd_handler", "system",
                  VulnClass::kCommandInjection}}) {
    TaintPath shaped;
    shaped.sink_name = twin.sink;
    shaped.vuln_class = twin.cls;
    VmConfig config;
    config.attacker_bytes = PayloadFor(shaped, out->binary.arch);
    Vm vm(out->binary, config);
    auto result = vm.Run(twin.entry);
    bool clean = result.ok() && result->violations.empty();
    if (clean) ++twins_clean;
    std::printf("%-11s sanitized twin %s under the same attack\n",
                clean ? "SURVIVED" : "EXPLOITED!", twin.entry);
  }

  std::printf("\n%d/%zu findings dynamically confirmed; %d/2 sanitized "
              "twins survived\n",
              confirmed, report->findings.size(), twins_clean);
  return (confirmed == static_cast<int>(report->findings.size()) &&
          twins_clean == 2)
             ? 0
             : 1;
}
